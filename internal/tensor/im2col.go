package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling window.
type ConvGeom struct {
	InC, InH, InW int // input channels and spatial size
	KH, KW        int // kernel size
	StrideH       int
	StrideW       int
	PadH          int
	PadW          int
}

// OutH returns the output height of the window sweep.
func (g ConvGeom) OutH() int { return (g.InH+2*g.PadH-g.KH)/g.StrideH + 1 }

// OutW returns the output width of the window sweep.
func (g ConvGeom) OutW() int { return (g.InW+2*g.PadW-g.KW)/g.StrideW + 1 }

// Validate reports whether the geometry describes at least one valid window
// position with positive sizes and strides.
func (g ConvGeom) Validate() error {
	switch {
	case g.InC <= 0 || g.InH <= 0 || g.InW <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive input %dx%dx%d", g.InC, g.InH, g.InW)
	case g.KH <= 0 || g.KW <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive kernel %dx%d", g.KH, g.KW)
	case g.StrideH <= 0 || g.StrideW <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive stride %dx%d", g.StrideH, g.StrideW)
	case g.PadH < 0 || g.PadW < 0:
		return fmt.Errorf("tensor: conv geometry has negative padding %dx%d", g.PadH, g.PadW)
	case g.OutH() <= 0 || g.OutW() <= 0:
		return fmt.Errorf("tensor: conv geometry yields empty output %dx%d", g.OutH(), g.OutW())
	}
	return nil
}

// Im2Col lowers a CHW input into a matrix of shape
// (InC·KH·KW) × (OutH·OutW): each column holds one receptive field. This is
// the software analogue of FINN's Sliding Window Unit (SWU), which streams
// exactly these windows into the MVTU.
func Im2Col(in *Tensor, g ConvGeom) (*Tensor, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	out := New(g.InC*g.KH*g.KW, g.OutH()*g.OutW())
	if err := Im2ColInto(out, in, g); err != nil {
		return nil, err
	}
	return out, nil
}

// Im2ColInto lowers in into dst, a caller-provided (InC·KH·KW)×(OutH·OutW)
// tensor (typically borrowed from the scratch arena). Every element of dst
// is written: positions that fall into padding are zeroed, so dst may hold
// stale data on entry. Channels are split across the package worker pool;
// each output row belongs to exactly one channel, so the result is
// identical for any worker count.
func Im2ColInto(dst, in *Tensor, g ConvGeom) error {
	if err := g.Validate(); err != nil {
		return err
	}
	if in.Rank() != 3 || in.shape[0] != g.InC || in.shape[1] != g.InH || in.shape[2] != g.InW {
		return fmt.Errorf("tensor: Im2Col input %v does not match geometry %dx%dx%d", in.shape, g.InC, g.InH, g.InW)
	}
	oh, ow := g.OutH(), g.OutW()
	rows := g.InC * g.KH * g.KW
	cols := oh * ow
	if dst.Rank() != 2 || dst.shape[0] != rows || dst.shape[1] != cols {
		return fmt.Errorf("tensor: Im2ColInto dst %v, want %dx%d", dst.shape, rows, cols)
	}
	od := dst.data
	id := in.data
	rowsPerC := g.KH * g.KW
	parallelFor(g.InC, rowsPerC*cols, func(cLo, cHi int) {
		clear(od[cLo*rowsPerC*cols : cHi*rowsPerC*cols])
		for c := cLo; c < cHi; c++ {
			for kh := 0; kh < g.KH; kh++ {
				for kw := 0; kw < g.KW; kw++ {
					r := (c*g.KH+kh)*g.KW + kw
					rowBase := r * cols
					for oy := 0; oy < oh; oy++ {
						iy := oy*g.StrideH - g.PadH + kh
						if iy < 0 || iy >= g.InH {
							continue
						}
						for ox := 0; ox < ow; ox++ {
							ix := ox*g.StrideW - g.PadW + kw
							if ix < 0 || ix >= g.InW {
								continue
							}
							od[rowBase+oy*ow+ox] = id[(c*g.InH+iy)*g.InW+ix]
						}
					}
				}
			}
		}
	})
	return nil
}

// convTileCols is the number of output positions per streamed patch tile
// of the fused int8 convolution: one kcPanel×convTileCols int8 patch panel
// (≤16 KiB) plus the four int32 accumulator rows it feeds stay L1-resident.
const convTileCols = 128

// ConvInt8Into computes a quantized convolution without ever materializing
// the full im2col patch matrix: dst = rescale(W · im2col(x)), where W is
// the (OutC × InC·KH·KW) int8 weight matrix, x the int8-quantized CHW
// input, and rescale multiplies output row o by outScales[o] (or
// outScales[0] when a single tensor-wide scale is given). dst is a
// caller-provided rank-2 (OutC × OutH·OutW) float32 tensor, fully
// overwritten.
//
// This is the fused streaming SWU+MVTU: receptive-field windows are
// lowered into kcPanel×convTileCols panels that feed the int8 GEMM inner
// loop directly, so peak scratch is one L1-sized panel per worker instead
// of the full (InC·KH·KW)×(OutH·OutW) patch matrix. Output-position tiles
// are split across the package worker pool; integer accumulation is exact,
// so results are bit-identical for any worker count and tile schedule.
func ConvInt8Into(dst *Tensor, w *Int8Matrix, x []int8, g ConvGeom, outScales []float32) error {
	if err := g.Validate(); err != nil {
		return err
	}
	oh, ow := g.OutH(), g.OutW()
	cols := oh * ow
	k := g.InC * g.KH * g.KW
	outC := w.Rows
	if w.Cols != k || len(w.Data) != outC*k {
		return fmt.Errorf("tensor: ConvInt8Into weights %dx%d, want %dx%d", w.Rows, w.Cols, outC, k)
	}
	if len(x) != g.InC*g.InH*g.InW {
		return fmt.Errorf("tensor: ConvInt8Into input length %d does not match geometry %dx%dx%d",
			len(x), g.InC, g.InH, g.InW)
	}
	if dst.Rank() != 2 || dst.shape[0] != outC || dst.shape[1] != cols {
		return fmt.Errorf("tensor: ConvInt8Into dst %v, want %dx%d", dst.shape, outC, cols)
	}
	if len(outScales) != 1 && len(outScales) != outC {
		return fmt.Errorf("tensor: ConvInt8Into wants 1 or %d output scales, got %d", outC, len(outScales))
	}
	od := dst.data
	wd := w.Data
	kc := min(kcPanel, k)
	tiles := (cols + convTileCols - 1) / convTileCols
	parallelFor(tiles, outC*k*convTileCols, func(tLo, tHi int) {
		patch := BorrowInt8(kc * convTileCols)
		acc := BorrowInt32(outC * convTileCols)
		defer ReleaseInt8(patch)
		defer ReleaseInt32(acc)
		for t := tLo; t < tHi; t++ {
			j0 := t * convTileCols
			j1 := min(j0+convTileCols, cols)
			tw := j1 - j0
			clear(acc[:outC*tw])
			for p0 := 0; p0 < k; p0 += kc {
				p1 := min(p0+kc, k)
				streamPatchPanel(patch, x, g, p0, p1, j0, j1, ow)
				convInt8Panel(acc, wd, patch, outC, k, p0, p1, tw)
			}
			for o := 0; o < outC; o++ {
				s := outScales[0]
				if len(outScales) > 1 {
					s = outScales[o]
				}
				drow := od[o*cols+j0 : o*cols+j1]
				for jj, v := range acc[o*tw : o*tw+tw] {
					drow[jj] = float32(v) * s
				}
			}
		}
	})
	return nil
}

// ConvInt8BatchInto is the batched form of ConvInt8Into: it convolves B
// same-geometry inputs against one weight matrix, writing each sample's
// rescaled output into dsts[b]. The loop nest is reordered so that within
// an output tile each weight panel is walked once per batch — the panel
// stays cache-resident across the B samples instead of being re-streamed
// per frame — while each sample's patch panels are still lowered one at a
// time (peak scratch stays one panel plus B accumulator tiles per worker).
//
// Per sample, every output element accumulates exactly the products of
// ConvInt8Into in the same ascending-panel order; integer accumulation is
// exact, so each dsts[b] is bit-identical to a standalone ConvInt8Into
// call for any worker count and batch size. outScales[b] follows the
// outScales contract of ConvInt8Into (1 or OutC entries per sample).
func ConvInt8BatchInto(dsts []*Tensor, w *Int8Matrix, xs [][]int8, g ConvGeom, outScales [][]float32) error {
	if err := g.Validate(); err != nil {
		return err
	}
	bsz := len(dsts)
	if bsz == 0 || len(xs) != bsz || len(outScales) != bsz {
		return fmt.Errorf("tensor: ConvInt8BatchInto wants equal non-zero dsts/xs/outScales, got %d/%d/%d",
			len(dsts), len(xs), len(outScales))
	}
	oh, ow := g.OutH(), g.OutW()
	cols := oh * ow
	k := g.InC * g.KH * g.KW
	outC := w.Rows
	if w.Cols != k || len(w.Data) != outC*k {
		return fmt.Errorf("tensor: ConvInt8BatchInto weights %dx%d, want %dx%d", w.Rows, w.Cols, outC, k)
	}
	for b := 0; b < bsz; b++ {
		if len(xs[b]) != g.InC*g.InH*g.InW {
			return fmt.Errorf("tensor: ConvInt8BatchInto input %d length %d does not match geometry %dx%dx%d",
				b, len(xs[b]), g.InC, g.InH, g.InW)
		}
		if dsts[b].Rank() != 2 || dsts[b].shape[0] != outC || dsts[b].shape[1] != cols {
			return fmt.Errorf("tensor: ConvInt8BatchInto dst %d %v, want %dx%d", b, dsts[b].shape, outC, cols)
		}
		if len(outScales[b]) != 1 && len(outScales[b]) != outC {
			return fmt.Errorf("tensor: ConvInt8BatchInto wants 1 or %d output scales for sample %d, got %d",
				outC, b, len(outScales[b]))
		}
	}
	wd := w.Data
	kc := min(kcPanel, k)
	tiles := (cols + convTileCols - 1) / convTileCols
	parallelFor(tiles, bsz*outC*k*convTileCols, func(tLo, tHi int) {
		patch := BorrowInt8(kc * convTileCols)
		acc := BorrowInt32(bsz * outC * convTileCols)
		defer ReleaseInt8(patch)
		defer ReleaseInt32(acc)
		for t := tLo; t < tHi; t++ {
			j0 := t * convTileCols
			j1 := min(j0+convTileCols, cols)
			tw := j1 - j0
			clear(acc[:bsz*outC*tw])
			for p0 := 0; p0 < k; p0 += kc {
				p1 := min(p0+kc, k)
				for b := 0; b < bsz; b++ {
					streamPatchPanel(patch, xs[b], g, p0, p1, j0, j1, ow)
					convInt8Panel(acc[b*outC*tw:(b+1)*outC*tw], wd, patch, outC, k, p0, p1, tw)
				}
			}
			for b := 0; b < bsz; b++ {
				od := dsts[b].data
				scales := outScales[b]
				bacc := acc[b*outC*tw : (b+1)*outC*tw]
				for o := 0; o < outC; o++ {
					s := scales[0]
					if len(scales) > 1 {
						s = scales[o]
					}
					drow := od[o*cols+j0 : o*cols+j1]
					for jj, v := range bacc[o*tw : o*tw+tw] {
						drow[jj] = float32(v) * s
					}
				}
			}
		}
	})
	return nil
}

// streamPatchPanel lowers patch-matrix rows [p0,p1) restricted to output
// positions [j0,j1) into panel (row-major, width j1-j0), zeroing padding.
// This is Im2ColInto's loop nest confined to one cache panel.
func streamPatchPanel(panel []int8, x []int8, g ConvGeom, p0, p1, j0, j1, ow int) {
	tw := j1 - j0
	kk := g.KH * g.KW
	for r := p0; r < p1; r++ {
		c := r / kk
		rem := r % kk
		kh := rem / g.KW
		kw := rem % g.KW
		dstRow := panel[(r-p0)*tw : (r-p0+1)*tw]
		j := j0
		for j < j1 {
			oy := j / ow
			ox := j % ow
			rowEnd := min(j1, (oy+1)*ow)
			iy := oy*g.StrideH - g.PadH + kh
			if iy < 0 || iy >= g.InH {
				clear(dstRow[j-j0 : rowEnd-j0])
				j = rowEnd
				continue
			}
			base := (c*g.InH + iy) * g.InW
			for ; j < rowEnd; j++ {
				ix := ox*g.StrideW - g.PadW + kw
				if ix < 0 || ix >= g.InW {
					dstRow[j-j0] = 0
				} else {
					dstRow[j-j0] = x[base+ix]
				}
				ox++
			}
		}
	}
}

// convInt8Panel accumulates acc += W[:, p0:p1] · panel with the same
// 4-row register blocking and skip-on-zero fusion as gemmInt8Panel; panel
// holds patch rows [p0,p1) at width tw, acc is OutC×tw.
func convInt8Panel(acc []int32, wd, panel []int8, outC, k, p0, p1, tw int) {
	i := 0
	for ; i+4 <= outC; i += 4 {
		c0 := acc[i*tw : (i+1)*tw]
		c1 := acc[(i+1)*tw : (i+2)*tw]
		c2 := acc[(i+2)*tw : (i+3)*tw]
		c3 := acc[(i+3)*tw : (i+4)*tw]
		a0 := wd[i*k : (i+1)*k]
		a1 := wd[(i+1)*k : (i+2)*k]
		a2 := wd[(i+2)*k : (i+3)*k]
		a3 := wd[(i+3)*k : (i+4)*k]
		for p := p0; p < p1; p++ {
			brow := panel[(p-p0)*tw : (p-p0+1)*tw]
			av0, av1, av2, av3 := int32(a0[p]), int32(a1[p]), int32(a2[p]), int32(a3[p])
			if av0 != 0 && av1 != 0 && av2 != 0 && av3 != 0 {
				axpy4i8(c0, c1, c2, c3, brow, av0, av1, av2, av3)
				continue
			}
			var rows [3][]int32
			var coef [3]int32
			nz := 0
			if av0 != 0 {
				rows[nz], coef[nz] = c0, av0
				nz++
			}
			if av1 != 0 {
				rows[nz], coef[nz] = c1, av1
				nz++
			}
			if av2 != 0 {
				rows[nz], coef[nz] = c2, av2
				nz++
			}
			if av3 != 0 {
				rows[nz], coef[nz] = c3, av3
				nz++
			}
			switch nz {
			case 3:
				axpy3i8(rows[0], rows[1], rows[2], brow, coef[0], coef[1], coef[2])
			case 2:
				axpy2i8(rows[0], rows[1], brow, coef[0], coef[1])
			case 1:
				axpyi8(rows[0], brow, coef[0])
			}
		}
	}
	for ; i < outC; i++ {
		crow := acc[i*tw : (i+1)*tw]
		arow := wd[i*k : (i+1)*k]
		for p := p0; p < p1; p++ {
			if av := int32(arow[p]); av != 0 {
				axpyi8(crow, panel[(p-p0)*tw:(p-p0+1)*tw], av)
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatters a (InC·KH·KW)×(OutH·OutW)
// matrix of per-window gradients back onto a CHW tensor, summing where
// windows overlap. Used by the convolution backward pass.
func Col2Im(cols *Tensor, g ConvGeom) (*Tensor, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	out := New(g.InC, g.InH, g.InW)
	if err := Col2ImInto(out, cols, g); err != nil {
		return nil, err
	}
	return out, nil
}

// Col2ImInto scatters cols into dst, a caller-provided CHW tensor whose
// contents are overwritten (dst may hold stale data on entry). Channels are
// split across the package worker pool; each channel of dst is written by
// exactly one worker in the serial loop's order, so results are
// bit-identical to Col2Im.
func Col2ImInto(dst, cols *Tensor, g ConvGeom) error {
	if err := g.Validate(); err != nil {
		return err
	}
	oh, ow := g.OutH(), g.OutW()
	wantRows := g.InC * g.KH * g.KW
	wantCols := oh * ow
	if cols.Rank() != 2 || cols.shape[0] != wantRows || cols.shape[1] != wantCols {
		return fmt.Errorf("tensor: Col2Im input %v does not match geometry (want %dx%d)", cols.shape, wantRows, wantCols)
	}
	if dst.Rank() != 3 || dst.shape[0] != g.InC || dst.shape[1] != g.InH || dst.shape[2] != g.InW {
		return fmt.Errorf("tensor: Col2ImInto dst %v, want %dx%dx%d", dst.shape, g.InC, g.InH, g.InW)
	}
	od := dst.data
	cd := cols.data
	plane := g.InH * g.InW
	parallelFor(g.InC, g.KH*g.KW*wantCols+plane, func(cLo, cHi int) {
		clear(od[cLo*plane : cHi*plane])
		for c := cLo; c < cHi; c++ {
			for kh := 0; kh < g.KH; kh++ {
				for kw := 0; kw < g.KW; kw++ {
					r := (c*g.KH+kh)*g.KW + kw
					rowBase := r * wantCols
					for oy := 0; oy < oh; oy++ {
						iy := oy*g.StrideH - g.PadH + kh
						if iy < 0 || iy >= g.InH {
							continue
						}
						for ox := 0; ox < ow; ox++ {
							ix := ox*g.StrideW - g.PadW + kw
							if ix < 0 || ix >= g.InW {
								continue
							}
							od[(c*g.InH+iy)*g.InW+ix] += cd[rowBase+oy*ow+ox]
						}
					}
				}
			}
		}
	})
	return nil
}
