package tensor

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// Randomized brute-force self-test of the fused int8 convolution (and the
// int8 GEMM beneath it), in the spirit of mumax3's conv self-tests: draw
// random geometries, run the fast kernels, and demand exact agreement with
// a transparent serial reference. Integer accumulation is exact, so the
// comparison is == on every element — no tolerance — and repeating the run
// under different worker caps must be bit-identical too.

// naiveConvInt8 is the obviously-correct reference: the direct six-loop
// convolution with int64 accumulation, rescaled through the same
// float32(int32)*scale expression the fast path uses.
func naiveConvInt8(w []int8, x []int8, g ConvGeom, outC int, outScales []float32) []float32 {
	oh, ow := g.OutH(), g.OutW()
	k := g.InC * g.KH * g.KW
	out := make([]float32, outC*oh*ow)
	for o := 0; o < outC; o++ {
		s := outScales[0]
		if len(outScales) > 1 {
			s = outScales[o]
		}
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var acc int64
				for c := 0; c < g.InC; c++ {
					for kh := 0; kh < g.KH; kh++ {
						iy := oy*g.StrideH - g.PadH + kh
						if iy < 0 || iy >= g.InH {
							continue
						}
						for kw := 0; kw < g.KW; kw++ {
							ix := ox*g.StrideW - g.PadW + kw
							if ix < 0 || ix >= g.InW {
								continue
							}
							wv := w[o*k+(c*g.KH+kh)*g.KW+kw]
							xv := x[(c*g.InH+iy)*g.InW+ix]
							acc += int64(wv) * int64(xv)
						}
					}
				}
				out[(o*oh+oy)*ow+ox] = float32(int32(acc)) * s
			}
		}
	}
	return out
}

// randInt8s fills a zero-heavy random int8 slice (low-bit weight grids are
// mostly zero, so the skip-on-zero fusion paths all get exercised).
func randInt8s(rng *rand.Rand, n int) []int8 {
	s := make([]int8, n)
	for i := range s {
		switch rng.Intn(4) {
		case 0:
			s[i] = 0
		case 1:
			s[i] = int8(rng.Intn(3) - 1) // −1, 0, +1: the W2 regime
		default:
			s[i] = int8(rng.Intn(255) - 127)
		}
	}
	return s
}

func randConvGeom(rng *rand.Rand) ConvGeom {
	for {
		g := ConvGeom{
			InC:     1 + rng.Intn(8),
			InH:     1 + rng.Intn(14),
			InW:     1 + rng.Intn(14),
			KH:      1 + rng.Intn(5),
			KW:      1 + rng.Intn(5),
			StrideH: 1 + rng.Intn(3),
			StrideW: 1 + rng.Intn(3),
			PadH:    rng.Intn(3),
			PadW:    rng.Intn(3),
		}
		if g.Validate() == nil {
			return g
		}
	}
}

func TestConvInt8SelfTest(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	prevGrain := SetParallelGrain(1) // force the parallel path even for tiny shapes
	defer SetParallelGrain(prevGrain)
	workerCaps := []int{1, 2, runtime.NumCPU()}
	for trial := 0; trial < 60; trial++ {
		g := randConvGeom(rng)
		outC := 1 + rng.Intn(9)
		k := g.InC * g.KH * g.KW
		w := &Int8Matrix{Rows: outC, Cols: k, Data: randInt8s(rng, outC*k)}
		x := randInt8s(rng, g.InC*g.InH*g.InW)
		var outScales []float32
		if rng.Intn(2) == 0 {
			outScales = []float32{rng.Float32() + 0.5}
		} else {
			outScales = make([]float32, outC)
			for i := range outScales {
				outScales[i] = rng.Float32() + 0.5
			}
		}
		want := naiveConvInt8(w.Data, x, g, outC, outScales)

		var first []float32
		for _, cap := range workerCaps {
			prev := SetMaxWorkers(cap)
			dst := New(outC, g.OutH()*g.OutW())
			err := ConvInt8Into(dst, w, x, g, outScales)
			SetMaxWorkers(prev)
			if err != nil {
				t.Fatalf("trial %d %+v: %v", trial, g, err)
			}
			got := dst.Data()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d %+v outC=%d workers=%d: out[%d] = %v, naive %v",
						trial, g, outC, cap, i, got[i], want[i])
				}
			}
			if first == nil {
				first = append([]float32(nil), got...)
			} else {
				for i := range got {
					if got[i] != first[i] {
						t.Fatalf("trial %d workers=%d: out[%d] = %v differs from 1-worker %v",
							trial, cap, i, got[i], first[i])
					}
				}
			}
		}
	}
}

func TestGemmInt8SelfTest(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	prevGrain := SetParallelGrain(1)
	defer SetParallelGrain(prevGrain)
	for trial := 0; trial < 40; trial++ {
		m := 1 + rng.Intn(20)
		k := 1 + rng.Intn(40)
		n := 1 + rng.Intn(20)
		if trial%5 == 0 {
			n = 1 // exercise the matrix-vector fast path
		}
		a := &Int8Matrix{Rows: m, Cols: k, Data: randInt8s(rng, m*k)}
		b := &Int8Matrix{Rows: k, Cols: n, Data: randInt8s(rng, k*n)}
		want := make([]int32, m*n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var acc int32
				for p := 0; p < k; p++ {
					acc += int32(a.Data[i*k+p]) * int32(b.Data[p*n+j])
				}
				want[i*n+j] = acc
			}
		}
		for _, cap := range []int{1, 2, runtime.NumCPU()} {
			prev := SetMaxWorkers(cap)
			got, err := GemmInt8(a, b)
			SetMaxWorkers(prev)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d %dx%dx%d workers=%d: c[%d] = %d, want %d",
						trial, m, k, n, cap, i, got[i], want[i])
				}
			}
		}
	}
}

// Shapes that cross the panel boundaries exactly (k or n a multiple of the
// panel sizes, ±1) are the classic off-by-one territory for cache blocking.
func TestGemmInt8PanelBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, k := range []int{kcPanel - 1, kcPanel, kcPanel + 1, 2 * kcPanel} {
		for _, n := range []int{1, 2, ncPanel - 1, ncPanel, ncPanel + 1} {
			m := 5 // odd: exercises the non-multiple-of-4 row tail
			a := &Int8Matrix{Rows: m, Cols: k, Data: randInt8s(rng, m*k)}
			b := &Int8Matrix{Rows: k, Cols: n, Data: randInt8s(rng, k*n)}
			got, err := GemmInt8(a, b)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					var acc int32
					for p := 0; p < k; p++ {
						acc += int32(a.Data[i*k+p]) * int32(b.Data[p*n+j])
					}
					if got[i*n+j] != acc {
						t.Fatalf("k=%d n=%d: c[%d,%d] = %d, want %d", k, n, i, j, got[i*n+j], acc)
					}
				}
			}
		}
	}
}

func TestGemmInt8Validation(t *testing.T) {
	a := NewInt8Matrix(2, 3)
	b := NewInt8Matrix(4, 2)
	if _, err := GemmInt8(a, b); err == nil {
		t.Fatal("inner-dimension mismatch accepted")
	}
	b = NewInt8Matrix(3, 2)
	if err := GemmInt8Into(make([]int32, 5), a, b); err == nil {
		t.Fatal("wrong dst length accepted")
	}
	b.Data = b.Data[:4]
	if _, err := GemmInt8(a, b); err == nil {
		t.Fatal("truncated storage accepted")
	}
}

func TestConvInt8Validation(t *testing.T) {
	g := ConvGeom{InC: 2, InH: 4, InW: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w := NewInt8Matrix(3, 2*3*3)
	x := make([]int8, 2*4*4)
	cols := g.OutH() * g.OutW()
	for _, tc := range []struct {
		name string
		run  func() error
	}{
		{"bad weights", func() error {
			return ConvInt8Into(New(3, cols), NewInt8Matrix(3, 5), x, g, []float32{1})
		}},
		{"bad input", func() error {
			return ConvInt8Into(New(3, cols), w, x[:7], g, []float32{1})
		}},
		{"bad dst", func() error {
			return ConvInt8Into(New(4, cols), w, x, g, []float32{1})
		}},
		{"bad scales", func() error {
			return ConvInt8Into(New(3, cols), w, x, g, []float32{1, 2})
		}},
	} {
		if err := tc.run(); err == nil {
			t.Fatalf("%s accepted", tc.name)
		}
	}
	if err := ConvInt8Into(New(3, cols), w, x, g, []float32{1, 2, 3}); err != nil {
		t.Fatalf("per-channel scales rejected: %v", err)
	}
}

func BenchmarkGemmInt8Sizes(b *testing.B) {
	for _, sz := range []struct{ m, k, n int }{{64, 576, 196}} {
		b.Run(fmt.Sprintf("%dx%dx%d", sz.m, sz.k, sz.n), func(b *testing.B) {
			a := &Int8Matrix{Rows: sz.m, Cols: sz.k, Data: randInt8s(rand.New(rand.NewSource(1)), sz.m*sz.k)}
			bb := &Int8Matrix{Rows: sz.k, Cols: sz.n, Data: randInt8s(rand.New(rand.NewSource(2)), sz.k*sz.n)}
			dst := make([]int32, sz.m*sz.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := GemmInt8Into(dst, a, bb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
