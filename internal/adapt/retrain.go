package adapt

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/library"
	"repro/internal/model"
	"repro/internal/train"
)

// LibraryRetrainer runs the real design-time pipeline on drift: it
// retrains a clone of the initial model on the post-shift dataset
// (internal/train, seeded SGD so the weights are deterministic), then
// re-prunes and re-synthesizes every entry through the memoized
// library.Generate pipeline, and reports the accuracy the candidate wins
// back on the shifted data. Simulation runs default to the analytic
// SimRetrainer because Generate costs real wall time at paper scale;
// tests drive this one with tiny models to prove the loop end to end.
type LibraryRetrainer struct {
	// Initial is the unpruned model the library was generated from; each
	// retrain starts from a fresh clone of it.
	Initial *model.Model
	// Dataset is the post-shift training data.
	Dataset *dataset.Dataset
	// Opts seeds and bounds the retraining run. Opts.Seed is what makes
	// "same drift ⇒ same retrained weights" hold.
	Opts train.Options
	// Gen regenerates the library; Gen.Evaluator measures accuracy on the
	// shifted distribution. Use the same Rates as the serving library so
	// entry indices stay valid across the swap.
	Gen library.Config
}

// Retrain implements Retrainer. recovered is measured, not assumed:
// candidate baseline accuracy on the shifted data, minus what the
// serving library achieves there (its nominal baseline less the deficit).
func (r *LibraryRetrainer) Retrain(lib *library.Library, deficit float64) (*library.Library, float64, error) {
	if r.Initial == nil || r.Dataset == nil {
		return nil, 0, fmt.Errorf("adapt: LibraryRetrainer needs Initial and Dataset")
	}
	m, err := r.Initial.Clone()
	if err != nil {
		return nil, 0, fmt.Errorf("adapt: clone: %w", err)
	}
	tr, err := train.New(r.Opts)
	if err != nil {
		return nil, 0, fmt.Errorf("adapt: %w", err)
	}
	if _, err := tr.Fit(m, r.Dataset); err != nil {
		return nil, 0, fmt.Errorf("adapt: retrain: %w", err)
	}
	cand, err := library.Generate(m, r.Gen)
	if err != nil {
		return nil, 0, fmt.Errorf("adapt: regenerate: %w", err)
	}
	cand.Version = lib.Version + 1
	recovered := cand.BaselineAccuracy() - (lib.BaselineAccuracy() - deficit)
	return cand, recovered, nil
}
