// Package adapt closes the serving loop against distribution shift. The
// Runtime Manager (internal/manager) adapts which pruned version serves,
// but the library itself is frozen at design time — under sustained
// drift every version degrades together and the manager has nothing
// better to switch to. This package watches the measured-accuracy stream
// for sustained deficits (a windowed EWMA with a hold-down, so transient
// spike faults never trigger), kicks off a deterministic background
// retrain of the affected model when one persists, validates the
// retrained candidate against the accuracy evaluator, and hot-swaps it
// into the serving library via a versioned atomic swap — the edge loop
// keeps serving the old version until every serving manager commits the
// new one. Failed candidates (validation failures, probation
// regressions) roll back to the prior version and charge an exponential
// quarantine backoff, mirroring the manager's reconfiguration
// degradation policy.
//
// Everything here runs inside the discrete-event engine's serial loop
// and draws no randomness of its own, so an adaptive chaos run replays
// bit-identically from (plan, seed) at any worker count: same
// detections, same retrained candidates, same swap times.
package adapt

import (
	"fmt"
	"math"

	"repro/internal/library"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Config tunes the closed adaptation loop. The zero value is disabled;
// an enabled zero config takes the documented defaults.
type Config struct {
	// Enabled switches the loop on. Disabled runs skip every adapt code
	// path and stay bit-identical to pre-adaptation behaviour.
	Enabled bool
	// Window is the EWMA time constant of the drift detector in seconds
	// (default 0.5). Samples older than a few windows stop mattering, so
	// a one-sample spike decays instead of triggering.
	Window float64
	// Threshold is the sustained accuracy deficit, in points on the [0,1]
	// scale, that arms a detection (default 0.03).
	Threshold float64
	// HoldDown is how long the EWMA deficit must stay beyond Threshold
	// before the detection fires (default 0.25 s) — the spike-vs-shift
	// discriminator.
	HoldDown float64
	// RetrainTime is the simulated latency of the background
	// retrain + re-prune + re-synthesis before the candidate is ready to
	// swap (default 1 s). Serving continues on the old library throughout.
	RetrainTime float64
	// RecoverFraction is the fraction of the detected deficit the default
	// SimRetrainer's candidate wins back (default 0.85). Ignored when
	// Retrainer is set.
	RecoverFraction float64
	// ValidateMargin is the minimum recovered accuracy, in points, for a
	// candidate to pass validation (default 0.005); candidates below it
	// are rejected without being swapped in.
	ValidateMargin float64
	// Probation is how long after a swap the detector verifies the
	// recovery (default 1 s). A deficit still beyond Threshold at the end
	// of probation rolls the swap back.
	Probation float64
	// Backoff quarantines detection after a failed retrain or rollback,
	// doubling per consecutive failure up to BackoffMax (defaults
	// 1 s / 16 s) — the same exponential scheme as the manager's
	// reconfiguration degradation policy.
	Backoff    float64
	BackoffMax float64
	// Retrainer produces candidate libraries; nil uses the analytic
	// SimRetrainer. Set a LibraryRetrainer to run the real
	// train/prune/Generate pipeline (tests do, with tiny models).
	Retrainer Retrainer
}

// withDefaults fills unset knobs.
func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 0.5
	}
	if c.Threshold == 0 {
		c.Threshold = 0.03
	}
	if c.HoldDown == 0 {
		c.HoldDown = 0.25
	}
	if c.RetrainTime == 0 {
		c.RetrainTime = 1
	}
	if c.RecoverFraction == 0 {
		c.RecoverFraction = 0.85
	}
	if c.ValidateMargin == 0 {
		c.ValidateMargin = 0.005
	}
	if c.Probation == 0 {
		c.Probation = 1
	}
	if c.Backoff == 0 {
		c.Backoff = 1
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 16
	}
	return c
}

// validate rejects nonsensical knobs (after defaulting).
func (c Config) validate() error {
	switch {
	case c.Window <= 0:
		return fmt.Errorf("adapt: non-positive detector window %v", c.Window)
	case c.Threshold <= 0 || c.Threshold >= 1:
		return fmt.Errorf("adapt: threshold %v outside (0,1)", c.Threshold)
	case c.HoldDown < 0:
		return fmt.Errorf("adapt: negative hold-down %v", c.HoldDown)
	case c.RetrainTime <= 0:
		return fmt.Errorf("adapt: non-positive retrain time %v", c.RetrainTime)
	case c.RecoverFraction < 0 || c.RecoverFraction > 1:
		return fmt.Errorf("adapt: recover fraction %v outside [0,1]", c.RecoverFraction)
	case c.ValidateMargin < 0:
		return fmt.Errorf("adapt: negative validate margin %v", c.ValidateMargin)
	case c.Probation <= 0:
		return fmt.Errorf("adapt: non-positive probation %v", c.Probation)
	case c.Backoff <= 0 || c.BackoffMax < c.Backoff:
		return fmt.Errorf("adapt: backoff %v / max %v invalid", c.Backoff, c.BackoffMax)
	}
	return nil
}

// Retrainer produces a retrained candidate library from the serving one.
// deficit is the detector's current residual accuracy deficit in points.
// It returns the candidate, the accuracy it is expected to win back
// (validated against Config.ValidateMargin), and an error for synthesis
// failures (treated as a failed retrain: rollback + quarantine backoff).
// Implementations must be deterministic — same inputs, same candidate —
// or replays stop being bit-identical.
type Retrainer interface {
	Retrain(lib *library.Library, deficit float64) (cand *library.Library, recovered float64, err error)
}

// SimRetrainer is the analytic default retrainer for simulation runs: the
// candidate is a version-bumped clone of the serving library and wins
// back Fraction of the deficit. It models the outcome of retraining on
// post-shift data without paying Generate's wall-clock cost per swap; the
// real pipeline is LibraryRetrainer.
type SimRetrainer struct {
	// Fraction of the deficit the candidate recovers, in [0,1].
	Fraction float64
}

// Retrain implements Retrainer.
func (r SimRetrainer) Retrain(lib *library.Library, deficit float64) (*library.Library, float64, error) {
	return Rebuild(lib), r.Fraction * deficit, nil
}

// Rebuild returns a shallow clone of lib with its version bumped. The
// entries slice is copied so readers still holding the old version never
// observe the candidate mutating under them — published libraries are
// immutable, swaps replace pointers.
func Rebuild(lib *library.Library) *library.Library {
	c := *lib
	c.Entries = append([]library.Entry(nil), lib.Entries...)
	c.Version = lib.Version + 1
	return &c
}

// state is the loop's phase.
type state int

const (
	stateIdle state = iota
	stateRetraining
	stateSwapPending
	stateProbation
)

// Loop is the closed adaptation loop of one serving run: detector state,
// the retrain/swap/probation state machine, and the recovery accounting.
// It is driven entirely from the simulation's serial event loop and is
// not safe for concurrent use.
type Loop struct {
	cfg       Config
	retrainer Retrainer
	tr        *obs.Trace

	lib *library.Library // committed serving version

	// Detector: EWMA of (measured − expected) with time constant Window.
	ewma       float64
	haveEwma   bool
	lastT      float64
	belowSince float64
	haveBelow  bool

	st      state
	deficit float64 // EWMA deficit captured at detection

	// comp is the active compensation in accuracy points: how much of the
	// shift the committed retrained versions win back. It accumulates
	// across rounds, so a deepening ramp is chased by successive
	// detect → retrain → swap cycles.
	comp     float64
	applied  float64 // compensation actually applied to the last sample
	pending  *library.Library
	pendComp float64
	pendBack bool // pending is a rollback re-install of prevLib
	prevLib  *library.Library
	prevComp float64

	probationUntil  float64
	quarantineUntil float64
	consecFails     int

	stats        metrics.AdaptStats
	compWeighted float64
	frames       float64
}

// NewLoop builds the loop for a run serving lib. The tracer may be nil.
func NewLoop(cfg Config, lib *library.Library, tr *obs.Trace) (*Loop, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if lib == nil {
		return nil, fmt.Errorf("adapt: nil serving library")
	}
	rt := cfg.Retrainer
	if rt == nil {
		rt = SimRetrainer{Fraction: cfg.RecoverFraction}
	}
	return &Loop{
		cfg: cfg, retrainer: rt, tr: tr, lib: lib,
		quarantineUntil: math.Inf(-1), lastT: math.Inf(-1),
	}, nil
}

// RetrainTime returns the configured background-retrain latency (the
// delay callers schedule FinishRetrain at after a detection).
func (l *Loop) RetrainTime() float64 { return l.cfg.RetrainTime }

// Compensate applies the active compensation to a sustained-shift delta
// and returns the residual. Compensation never overshoots: it offsets at
// most the shift actually present in this sample, so when a drift window
// closes the measured accuracy returns to nominal instead of above it.
// Call once per accounting sample, before Observe.
func (l *Loop) Compensate(sd float64) float64 {
	l.applied = 0
	if sd >= 0 || l.comp <= 0 {
		return sd
	}
	a := l.comp
	if a > -sd {
		a = -sd
	}
	l.applied = a
	return sd + a
}

// Account charges n processed frames against the compensation applied to
// the current sample, for the recovered-points stat. Call after
// Compensate with the frames the sample covers.
func (l *Loop) Account(n float64) {
	if n <= 0 {
		return
	}
	l.frames += n
	l.compWeighted += l.applied * n
}

// Observe feeds one measured-accuracy sample at time now (expected is the
// serving entry's nominal accuracy; measured already includes fault
// deltas and compensation). It returns true when sustained drift was just
// detected — the caller must then schedule FinishRetrain at
// now + RetrainTime() to complete the background retrain.
func (l *Loop) Observe(now, measured, expected float64) bool {
	x := measured - expected
	if !l.haveEwma {
		l.ewma, l.haveEwma = x, true
	} else if dt := now - l.lastT; dt > 0 {
		alpha := 1 - math.Exp(-dt/l.cfg.Window)
		l.ewma += (x - l.ewma) * alpha
	}
	l.lastT = now

	switch l.st {
	case stateRetraining, stateSwapPending:
		return false
	case stateProbation:
		if now < l.probationUntil {
			return false
		}
		if l.ewma <= -l.cfg.Threshold {
			l.rollback(now, "probation")
		} else {
			// Recovery verified: the swap sticks, failures reset.
			l.st = stateIdle
			l.consecFails = 0
			l.prevLib = nil
		}
		return false
	}

	// Idle: arm and fire the hold-down.
	if l.ewma <= -l.cfg.Threshold && now >= l.quarantineUntil {
		if !l.haveBelow {
			l.belowSince, l.haveBelow = now, true
		}
		if now-l.belowSince >= l.cfg.HoldDown {
			l.haveBelow = false
			l.deficit = -l.ewma
			l.st = stateRetraining
			l.stats.Detections++
			if l.tr.Enabled() {
				l.tr.Emit(now, obs.AdaptCat, "drift-detected",
					obs.F("deficit", l.deficit),
					obs.F("threshold", l.cfg.Threshold),
					obs.I("version", l.lib.Version))
				l.tr.Emit(now, obs.AdaptCat, "retrain-start",
					obs.F("eta_s", l.cfg.RetrainTime),
					obs.I("version", l.lib.Version))
			}
			return true
		}
	} else {
		l.haveBelow = false
	}
	return false
}

// FinishRetrain completes the background retrain scheduled at detection:
// it produces the candidate, validates the recovery against
// ValidateMargin, and stages the candidate for the hot swap. A candidate
// that fails synthesis or validation is rejected — rollback accounting,
// quarantine backoff — without ever being served.
func (l *Loop) FinishRetrain(now float64) {
	if l.st != stateRetraining {
		return
	}
	l.stats.Retrains++
	// Chase the live estimate: a ramp that kept deepening during the
	// retrain is compensated at its current depth, not the stale
	// detection-time one. The EWMA tracks the residual (compensation
	// already applied), so rounds compose additively.
	deficit := -l.ewma
	if deficit < l.deficit {
		deficit = l.deficit
	}
	cand, recovered, err := l.retrainer.Retrain(l.lib, deficit)
	if err != nil || cand == nil || recovered < l.cfg.ValidateMargin {
		l.rollback(now, "validation")
		return
	}
	l.pending = cand
	l.pendComp = l.comp + recovered
	l.pendBack = false
	l.st = stateSwapPending
}

// PendingSwap returns the validated candidate awaiting installation (nil
// when none). The caller offers it to the serving side's LibrarySwapper
// and reports a committed swap via Committed; a refused swap (manager
// mid-reconfiguration, pool boards stalled) is simply re-offered at the
// next sample — serving never stops.
func (l *Loop) PendingSwap() *library.Library {
	if l.st != stateSwapPending {
		return nil
	}
	return l.pending
}

// Committed tells the loop its pending candidate is now serving
// everywhere. Forward swaps enter probation; rollback re-installs of the
// prior version return to idle (still quarantined).
func (l *Loop) Committed(now float64) {
	if l.st != stateSwapPending || l.pending == nil {
		return
	}
	// The serving library just changed, so the detector's memory is about
	// a version no longer serving: restart the EWMA from the first
	// post-swap sample. Probation then judges the recovery itself, not the
	// decaying tail of the pre-swap deficit.
	l.haveEwma = false
	if l.pendBack {
		l.lib, l.comp = l.pending, l.pendComp
		l.pending, l.pendBack = nil, false
		l.prevLib = nil
		l.st = stateIdle
		return
	}
	l.prevLib, l.prevComp = l.lib, l.comp
	l.lib, l.comp = l.pending, l.pendComp
	l.pending = nil
	l.stats.Swaps++
	l.st = stateProbation
	l.probationUntil = now + l.cfg.Probation
	if l.tr.Enabled() {
		l.tr.Emit(now, obs.AdaptCat, "swap-commit",
			obs.I("version", l.lib.Version),
			obs.F("compensation", l.comp))
	}
}

// rollback charges one failed retrain round: quarantine detection with
// exponential backoff (doubling per consecutive failure, capped at
// BackoffMax — the manager's degradation scheme), and, after a probation
// regression, stage the prior version for re-install through the same
// deferred-safe swap path the forward swap used.
func (l *Loop) rollback(now float64, why string) {
	l.stats.Rollbacks++
	l.consecFails++
	shift := l.consecFails - 1
	if shift > 62 {
		shift = 62
	}
	backoff := l.cfg.Backoff * float64(int64(1)<<shift)
	if backoff > l.cfg.BackoffMax || backoff <= 0 {
		backoff = l.cfg.BackoffMax
	}
	l.quarantineUntil = now + backoff
	l.haveBelow = false
	if l.tr.Enabled() {
		l.tr.Emit(now, obs.AdaptCat, "rollback",
			obs.S("reason", why),
			obs.I("consecutive_failures", l.consecFails),
			obs.F("backoff_s", backoff),
			obs.I("version", l.lib.Version))
	}
	if why == "probation" && l.prevLib != nil {
		l.pending = l.prevLib
		l.pendComp = l.prevComp
		l.pendBack = true
		l.st = stateSwapPending
		return
	}
	l.pending, l.pendBack = nil, false
	l.st = stateIdle
}

// Library returns the committed serving version as the loop tracks it.
func (l *Loop) Library() *library.Library { return l.lib }

// Stats returns the run counters with RecoveredPoints resolved to the
// processed-weighted mean compensation.
func (l *Loop) Stats() metrics.AdaptStats {
	s := l.stats
	if l.frames > 0 {
		s.RecoveredPoints = l.compWeighted / l.frames
	}
	return s
}
