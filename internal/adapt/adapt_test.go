package adapt

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/library"
)

// testLib builds a minimal serving library for state-machine tests; the
// loop only reads Entries and Version.
func testLib() *library.Library {
	return &library.Library{Entries: []library.Entry{{Accuracy: 0.9}, {Accuracy: 0.85}}}
}

func newTestLoop(t *testing.T, cfg Config) *Loop {
	t.Helper()
	cfg.Enabled = true
	l, err := NewLoop(cfg, testLib(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestConfigValidate(t *testing.T) {
	for name, cfg := range map[string]Config{
		"threshold>=1":  {Threshold: 1},
		"neg holddown":  {HoldDown: -1},
		"neg retrain":   {RetrainTime: -1},
		"frac>1":        {RecoverFraction: 2},
		"neg margin":    {ValidateMargin: -0.1},
		"neg probation": {Probation: -1},
		"max<backoff":   {Backoff: 4, BackoffMax: 2},
	} {
		if _, err := NewLoop(cfg, testLib(), nil); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := NewLoop(Config{}, nil, nil); err == nil {
		t.Error("nil library accepted")
	}
}

// TestSpikeVsSustained: a one-sample accuracy spike decays through the
// EWMA without triggering; the same depth sustained past the hold-down
// fires exactly one detection.
func TestSpikeVsSustained(t *testing.T) {
	l := newTestLoop(t, Config{Window: 0.5, Threshold: 0.03, HoldDown: 0.25})
	const dt = 0.01
	now := 0.0
	step := func(measured float64) bool {
		now += dt
		return l.Observe(now, measured, 0.9)
	}
	// Settle at nominal, then one deep spike, then nominal again.
	for i := 0; i < 50; i++ {
		step(0.9)
	}
	if step(0.6) {
		t.Fatal("single spike triggered instantly")
	}
	for i := 0; i < 200; i++ {
		if step(0.9) {
			t.Fatal("decaying spike triggered a detection")
		}
	}
	// Sustained shift of the same depth: must fire once the EWMA crosses
	// the threshold and holds for HoldDown.
	fired := false
	for i := 0; i < 200; i++ {
		if step(0.6) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("sustained shift never detected")
	}
	if s := l.Stats(); s.Detections != 1 {
		t.Fatalf("detections = %d, want 1", s.Detections)
	}
}

// TestFullCycle drives one complete detect → retrain → swap → probation
// cycle and checks the compensation plumbing along the way.
func TestFullCycle(t *testing.T) {
	l := newTestLoop(t, Config{Window: 0.2, Threshold: 0.03, HoldDown: 0.1,
		RetrainTime: 0.5, RecoverFraction: 0.9, Probation: 0.5})
	const dt, shift = 0.01, -0.15
	now, detected := 0.0, math.NaN()
	for i := 0; i < 200 && math.IsNaN(detected); i++ {
		now += dt
		sd := l.Compensate(shift)
		l.Account(10)
		if l.Observe(now, 0.9+sd, 0.9) {
			detected = now
		}
	}
	if math.IsNaN(detected) {
		t.Fatal("no detection")
	}
	if l.PendingSwap() != nil {
		t.Fatal("pending swap before the retrain finished")
	}
	l.FinishRetrain(detected + l.RetrainTime())
	cand := l.PendingSwap()
	if cand == nil {
		t.Fatal("no pending swap after retrain")
	}
	if cand.Version != 1 {
		t.Fatalf("candidate version = %d, want 1", cand.Version)
	}
	now = detected + l.RetrainTime()
	l.Committed(now)
	if l.Library() != cand {
		t.Fatal("committed swap did not replace the loop's library")
	}
	// Compensation is now active and must not overshoot a shallower (or
	// absent) shift.
	if sd := l.Compensate(shift); sd <= shift || sd > 0 {
		t.Fatalf("compensated shift %v out of (%v, 0]", sd, shift)
	}
	if sd := l.Compensate(-0.01); sd != 0 {
		t.Fatalf("compensation overshot a shallow shift: %v", sd)
	}
	if sd := l.Compensate(0); sd != 0 {
		t.Fatalf("compensation applied with no shift: %v", sd)
	}
	// Ride out probation at the compensated accuracy: the swap sticks.
	for i := 0; i < 100; i++ {
		now += dt
		sd := l.Compensate(shift)
		l.Account(10)
		l.Observe(now, 0.9+sd, 0.9)
	}
	s := l.Stats()
	if s.Detections != 1 || s.Retrains != 1 || s.Swaps != 1 || s.Rollbacks != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.RecoveredPoints <= 0 {
		t.Fatalf("recovered points = %v, want > 0", s.RecoveredPoints)
	}
}

// failingRetrainer always reports a synthesis failure.
type failingRetrainer struct{}

func (failingRetrainer) Retrain(*library.Library, float64) (*library.Library, float64, error) {
	return nil, 0, fmt.Errorf("synthesis failed")
}

// TestValidationRollbackAndQuarantine: a failed retrain rolls back
// without ever staging a swap, and quarantines detection for the
// backoff.
func TestValidationRollbackAndQuarantine(t *testing.T) {
	l := newTestLoop(t, Config{Window: 0.2, Threshold: 0.03, HoldDown: 0.1,
		Backoff: 2, BackoffMax: 16, Retrainer: failingRetrainer{}})
	const dt = 0.01
	now, detected := 0.0, math.NaN()
	for i := 0; i < 200 && math.IsNaN(detected); i++ {
		now += dt
		if l.Observe(now, 0.75, 0.9) {
			detected = now
		}
	}
	if math.IsNaN(detected) {
		t.Fatal("no detection")
	}
	l.FinishRetrain(detected + l.RetrainTime())
	if l.PendingSwap() != nil {
		t.Fatal("failed retrain staged a swap")
	}
	s := l.Stats()
	if s.Rollbacks != 1 || s.Swaps != 0 {
		t.Fatalf("stats = %+v", s)
	}
	// Inside the quarantine the deficit persists but must not re-detect.
	now = detected + l.RetrainTime()
	quarantineEnd := now + 2
	for now < quarantineEnd-dt {
		now += dt
		if l.Observe(now, 0.75, 0.9) {
			t.Fatalf("re-detected at %v inside quarantine", now)
		}
	}
	// After quarantine + hold-down it fires again.
	fired := false
	for i := 0; i < 100; i++ {
		now += dt
		if l.Observe(now, 0.75, 0.9) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("never re-detected after quarantine")
	}
}

// TestBackoffDoubling: consecutive failures double the quarantine up to
// BackoffMax, and a success resets the streak.
func TestBackoffDoubling(t *testing.T) {
	l := newTestLoop(t, Config{Backoff: 1, BackoffMax: 4, Retrainer: failingRetrainer{}})
	base := 100.0
	for i, want := range []float64{1, 2, 4, 4, 4} {
		l.st = stateRetraining
		l.deficit = 0.1
		l.FinishRetrain(base)
		if got := l.quarantineUntil - base; got != want {
			t.Fatalf("failure %d: backoff %v, want %v", i+1, got, want)
		}
	}
	if l.consecFails != 5 {
		t.Fatalf("consecFails = %d", l.consecFails)
	}
}

// TestProbationRollback: a swap whose recovery is too shallow fails
// probation; the prior version is re-installed through the same pending
// swap path, and the compensation is rolled back with it.
func TestProbationRollback(t *testing.T) {
	l := newTestLoop(t, Config{Window: 0.2, Threshold: 0.03, HoldDown: 0.1,
		RecoverFraction: 0.1, ValidateMargin: 0.001, Probation: 0.3})
	orig := l.Library()
	const dt, shift = 0.01, -0.15
	now, detected := 0.0, math.NaN()
	for i := 0; i < 200 && math.IsNaN(detected); i++ {
		now += dt
		sd := l.Compensate(shift)
		if l.Observe(now, 0.9+sd, 0.9) {
			detected = now
		}
	}
	if math.IsNaN(detected) {
		t.Fatal("no detection")
	}
	now = detected + l.RetrainTime()
	l.FinishRetrain(now)
	cand := l.PendingSwap()
	if cand == nil {
		t.Fatal("no pending swap")
	}
	l.Committed(now)
	// Probation at only 10% compensation: the residual deficit stays past
	// the threshold, so probation expiry must roll back.
	for i := 0; i < 100 && l.PendingSwap() == nil; i++ {
		now += dt
		sd := l.Compensate(shift)
		l.Observe(now, 0.9+sd, 0.9)
	}
	back := l.PendingSwap()
	if back != orig {
		t.Fatalf("rollback staged %p, want the prior version %p", back, orig)
	}
	l.Committed(now)
	if l.Library() != orig {
		t.Fatal("rollback did not restore the prior version")
	}
	if sd := l.Compensate(shift); sd != shift {
		t.Fatalf("compensation survived the rollback: %v", sd)
	}
	s := l.Stats()
	if s.Swaps != 1 || s.Rollbacks != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestRebuildImmutable: Rebuild copies the entries slice, so mutating
// the candidate never reaches readers of the published version.
func TestRebuildImmutable(t *testing.T) {
	lib := testLib()
	cand := Rebuild(lib)
	if cand.Version != lib.Version+1 {
		t.Fatalf("version = %d", cand.Version)
	}
	cand.Entries[0].Accuracy = 0.1
	if lib.Entries[0].Accuracy != 0.9 {
		t.Fatal("candidate mutation reached the published library")
	}
}
