package adapt

import (
	"testing"

	"repro/internal/accuracy"
	"repro/internal/dataset"
	"repro/internal/library"
	"repro/internal/model"
	"repro/internal/train"
)

// TestLibraryRetrainerDeterministic proves the real design-time pipeline
// end to end on a tiny model: retrain a clone of the initial model,
// regenerate the library, and get the exact same candidate twice —
// "same drift, same retrained weights" is what keeps adaptive replays
// bit-identical.
func TestLibraryRetrainerDeterministic(t *testing.T) {
	ds := dataset.TinyDataset(1)
	m, err := model.TinyCNV("tiny", ds.Name, 2, ds.Classes, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := train.Options{Epochs: 1, LR: 0.05, BatchSize: 8, Samples: 32, Seed: 7}
	gen := library.Config{
		Rates:     []float64{0, 0.25},
		Evaluator: accuracy.NewTrained(ds, opts),
	}
	lib, err := library.Generate(m, gen)
	if err != nil {
		t.Fatal(err)
	}

	r := &LibraryRetrainer{Initial: m, Dataset: ds, Opts: opts, Gen: gen}
	c1, rec1, err := r.Retrain(lib, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	c2, rec2, err := r.Retrain(lib, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if rec1 != rec2 {
		t.Fatalf("recovered differs across identical retrains: %v vs %v", rec1, rec2)
	}
	if len(c1.Entries) != len(lib.Entries) {
		t.Fatalf("candidate entry count %d, want %d (indices must stay valid)", len(c1.Entries), len(lib.Entries))
	}
	for i := range c1.Entries {
		if c1.Entries[i].Accuracy != c2.Entries[i].Accuracy {
			t.Fatalf("entry %d accuracy differs: %v vs %v", i, c1.Entries[i].Accuracy, c2.Entries[i].Accuracy)
		}
	}
	if c1.Version != lib.Version+1 {
		t.Fatalf("candidate version = %d, want %d", c1.Version, lib.Version+1)
	}
	// recovered is measured against the drifted serving accuracy: the
	// candidate baseline minus (serving baseline - deficit).
	want := c1.BaselineAccuracy() - (lib.BaselineAccuracy() - 0.1)
	if rec1 != want {
		t.Fatalf("recovered = %v, want %v", rec1, want)
	}

	// Missing inputs are synthesis failures, not panics.
	if _, _, err := (&LibraryRetrainer{}).Retrain(lib, 0.1); err == nil {
		t.Fatal("retrainer with no inputs succeeded")
	}
}
