package finn

import (
	"reflect"
	"testing"

	"repro/internal/model"
)

// Refold must be equivalent to a fresh Map at the new folding: same module
// fields, same cycles, same FPS — the invariant the folding explorer's
// incremental re-evaluation rests on.
func TestRefoldMatchesFreshMap(t *testing.T) {
	m, err := model.CNVW2A2("cifar10", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := DefaultFolding(m)
	df, err := Map(m, f, Options{})
	if err != nil {
		t.Fatal(err)
	}

	nf := f.Clone()
	nf.ConvPE[2] = largestDivisorAtMost(m.Net.Convs()[2].OutC, 16)
	nf.DenseSIMD[0] = 1
	changed, err := df.Refold(nf)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) == 0 {
		t.Fatal("no modules reported changed")
	}

	fresh, err := Map(m, nf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Modules) != len(df.Modules) {
		t.Fatalf("module count diverged: %d vs %d", len(df.Modules), len(fresh.Modules))
	}
	for i := range df.Modules {
		if !reflect.DeepEqual(*df.Modules[i], *fresh.Modules[i]) {
			t.Fatalf("module %d (%s) diverged after refold:\n refold: %+v\n fresh:  %+v",
				i, df.Modules[i].Name, *df.Modules[i], *fresh.Modules[i])
		}
	}
	if df.FPS() != fresh.FPS() {
		t.Fatalf("FPS diverged: %v vs %v", df.FPS(), fresh.FPS())
	}
}

func TestRefoldNoChangeReportsNothing(t *testing.T) {
	m, err := model.CNVW2A2("cifar10", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := DefaultFolding(m)
	df, err := Map(m, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	changed, err := df.Refold(f.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 {
		t.Fatalf("identical folding reported %d changed modules", len(changed))
	}
}

func TestRefoldRollsBackOnIllegalFolding(t *testing.T) {
	m, err := model.CNVW2A2("cifar10", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := DefaultFolding(m)
	df, err := Map(m, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := make([]Module, len(df.Modules))
	for i, mod := range df.Modules {
		before[i] = *mod
	}
	bad := f.Clone()
	bad.ConvPE[0] = m.Net.Convs()[0].OutC + 1 // cannot divide OutC
	if _, err := df.Refold(bad); err == nil {
		t.Fatal("illegal folding accepted")
	}
	for i, mod := range df.Modules {
		if !reflect.DeepEqual(*mod, before[i]) {
			t.Fatalf("module %d not rolled back", i)
		}
	}
	if _, err := df.Refold(Folding{}); err == nil {
		t.Fatal("folding with wrong arity accepted")
	}
}
