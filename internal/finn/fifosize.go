package finn

import "fmt"

// FIFO sizing. FINN inserts stream FIFOs between stages and sizes them by
// characterization so rate-mismatched neighbours never deadlock or stall
// the pipeline's steady state. The model here captures the first-order
// requirement: a producer that is R× faster than its consumer builds up a
// backlog proportional to R within one consumer frame, bounded by the
// producer's per-frame output volume.
const (
	minFIFODepth = 2
	maxFIFODepth = 4096
)

// SizeFIFOs recomputes every FIFO's depth from the rate mismatch of its
// neighbouring compute stages (the FIFO depth lives in the module's PE
// field, which doubles as depth for KindFIFO). It returns the per-FIFO
// depths in pipeline order.
func (d *Dataflow) SizeFIFOs() ([]int, error) {
	// Collect compute stages (non-FIFO) in order with their cycle counts.
	type stageRef struct {
		idx    int
		cycles int64
	}
	var stages []stageRef
	for i, m := range d.Modules {
		if m.Kind != KindFIFO {
			stages = append(stages, stageRef{i, m.CyclesPerFrame()})
		}
	}
	if len(stages) < 2 {
		return nil, fmt.Errorf("finn: %s has fewer than two compute stages", d.Name)
	}
	var depths []int
	// Each FIFO sits after some compute stage; find its neighbours.
	for i, m := range d.Modules {
		if m.Kind != KindFIFO {
			continue
		}
		var prev, next *stageRef
		for s := range stages {
			if stages[s].idx < i {
				prev = &stages[s]
			}
			if stages[s].idx > i && next == nil {
				next = &stages[s]
			}
		}
		depth := minFIFODepth
		if prev != nil && next != nil && prev.cycles > 0 {
			// Producer finishes a frame in prev.cycles; consumer needs
			// next.cycles. A faster producer piles up ratio-many partial
			// frames of slack.
			ratio := float64(next.cycles) / float64(prev.cycles)
			if ratio > 1 {
				// Words buffered ≈ (ratio-1) · producer output per frame,
				// capped: FINN characterization would refine this.
				out := int64(m.SynOutC)
				if m.OutH*m.OutW > 0 {
					out *= int64(m.OutH * m.OutW)
				}
				need := int64((ratio - 1) * float64(out) / 8)
				if need > int64(depth) {
					depth = int(need)
				}
			}
		}
		if depth > maxFIFODepth {
			depth = maxFIFODepth
		}
		m.PE = depth
		depths = append(depths, depth)
	}
	return depths, nil
}
