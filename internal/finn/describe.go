package finn

import (
	"fmt"
	"io"
)

// Describe prints a Fig. 2-style map of the dataflow: every module in
// stream order with its folding, current/synthesis channels, cycles per
// frame, and share of the initiation interval. FIFOs are summarized.
func (d *Dataflow) Describe(w io.Writer) {
	ii := d.IICycles()
	fmt.Fprintf(w, "dataflow %s (%s, %.0f MHz)\n", d.Name, kindName(d.Flexible), d.ClockHz/1e6)
	fmt.Fprintf(w, "channels: current %v / worst-case %v\n", d.CurChannels, d.WorstChannels)
	fmt.Fprintf(w, "II %d cycles → %.1f FPS; latency %d cycles (%.2f ms)\n",
		ii, d.FPS(), d.LatencyCycles(), d.LatencySeconds()*1e3)
	fmt.Fprintf(w, "%-12s %-12s %-11s %-6s %-6s %-12s %-8s\n",
		"module", "kind", "in→out ch", "PE", "SIMD", "cycles", "II share")
	fifos := 0
	for _, m := range d.Modules {
		if m.Kind == KindFIFO {
			fifos++
			continue
		}
		c := m.CyclesPerFrame()
		share := 0.0
		if ii > 0 {
			share = float64(c) / float64(ii)
		}
		marker := ""
		if c == ii {
			marker = " ←bottleneck"
		}
		fmt.Fprintf(w, "%-12s %-12s %4d→%-6d %-6d %-6d %-12d %6.1f%%%s\n",
			m.Name, m.Kind, m.CurInC, m.CurOutC, m.PE, m.SIMD, c, share*100, marker)
	}
	fmt.Fprintf(w, "(+%d stream FIFOs)\n", fifos)
}
