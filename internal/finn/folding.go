package finn

import (
	"fmt"

	"repro/internal/model"
)

// Folding assigns PE/SIMD parallelism to every compute layer of a model:
// one entry per convolution and one per dense layer, in network order.
// SIMD for convolutions counts lanes along the K²·InC matrix axis (FINN's
// convention), so a SIMD of 9·s folds s channels of a 3×3 kernel per cycle.
type Folding struct {
	ConvPE    []int
	ConvSIMD  []int
	DensePE   []int
	DenseSIMD []int
}

// DefaultFolding derives a legal folding for a model, aiming at the
// capacity calibration described in DESIGN.md: kernel-parallel SIMD with a
// two-channel fold and PE=8 where divisibility allows, which puts the
// paper-scale CNV at ≈500 FPS at 100 MHz — the same workload-to-capacity
// ratio as the paper's ZCU104 baseline.
func DefaultFolding(m *model.Model) Folding {
	convs := m.Net.Convs()
	denses := m.Net.Denses()
	f := Folding{
		ConvPE:    make([]int, len(convs)),
		ConvSIMD:  make([]int, len(convs)),
		DensePE:   make([]int, len(denses)),
		DenseSIMD: make([]int, len(denses)),
	}
	for i, c := range convs {
		k2 := c.Geom.KH * c.Geom.KW
		f.ConvPE[i] = largestDivisorAtMost(c.OutC, 8)
		// Prefer folding whole kernel columns: SIMD = K² · s with s ≤ 2.
		s := largestDivisorAtMost(c.Geom.InC, 2)
		f.ConvSIMD[i] = k2 * s
	}
	for i, d := range denses {
		f.DensePE[i] = largestDivisorAtMost(d.Out, 8)
		f.DenseSIMD[i] = largestDivisorAtMost(d.In, 8)
	}
	return f
}

// largestDivisorAtMost returns the largest divisor of n not exceeding cap
// (at least 1).
func largestDivisorAtMost(n, cap int) int {
	if cap > n {
		cap = n
	}
	for d := cap; d > 1; d-- {
		if n%d == 0 {
			return d
		}
	}
	return 1
}

// Validate checks the folding against a model's layer shapes.
func (f Folding) Validate(m *model.Model) error {
	convs := m.Net.Convs()
	denses := m.Net.Denses()
	if len(f.ConvPE) != len(convs) || len(f.ConvSIMD) != len(convs) {
		return fmt.Errorf("finn: folding has %d/%d conv entries for %d convolutions",
			len(f.ConvPE), len(f.ConvSIMD), len(convs))
	}
	if len(f.DensePE) != len(denses) || len(f.DenseSIMD) != len(denses) {
		return fmt.Errorf("finn: folding has %d/%d dense entries for %d dense layers",
			len(f.DensePE), len(f.DenseSIMD), len(denses))
	}
	for i, c := range convs {
		k2 := c.Geom.KH * c.Geom.KW
		if f.ConvPE[i] <= 0 || c.OutC%f.ConvPE[i] != 0 {
			return fmt.Errorf("finn: conv %d: PE %d does not divide OutC %d", i, f.ConvPE[i], c.OutC)
		}
		if f.ConvSIMD[i] <= 0 || (k2*c.Geom.InC)%f.ConvSIMD[i] != 0 {
			return fmt.Errorf("finn: conv %d: SIMD %d does not divide K²·InC %d", i, f.ConvSIMD[i], k2*c.Geom.InC)
		}
	}
	for i, d := range denses {
		if f.DensePE[i] <= 0 || d.Out%f.DensePE[i] != 0 {
			return fmt.Errorf("finn: dense %d: PE %d does not divide Out %d", i, f.DensePE[i], d.Out)
		}
		if f.DenseSIMD[i] <= 0 || d.In%f.DenseSIMD[i] != 0 {
			return fmt.Errorf("finn: dense %d: SIMD %d does not divide In %d", i, f.DenseSIMD[i], d.In)
		}
	}
	return nil
}

// Clone deep-copies the folding.
func (f Folding) Clone() Folding {
	return Folding{
		ConvPE:    append([]int(nil), f.ConvPE...),
		ConvSIMD:  append([]int(nil), f.ConvSIMD...),
		DensePE:   append([]int(nil), f.DensePE...),
		DenseSIMD: append([]int(nil), f.DenseSIMD...),
	}
}

// ChannelGranularity returns, per convolution, the channel-count step g_i
// that pruned out-channel counts must be a multiple of:
//
//   - PE_i must divide ch′ (this layer's MVTU),
//   - SIMD_{i+1} must divide K²·ch′ (the next SWU/MVTU), and
//   - the first dense layer's SIMD must divide footprint·ch′ when the
//     convolution feeds the classifier head.
//
// These are the paper's dataflow-aware pruning constraints (§IV-A1)
// expressed as a single lcm per layer.
func (f Folding) ChannelGranularity(m *model.Model) ([]int, error) {
	if err := f.Validate(m); err != nil {
		return nil, err
	}
	convs := m.Net.Convs()
	gs := make([]int, len(convs))
	shapes, err := convFootprints(m)
	if err != nil {
		return nil, err
	}
	for i := range convs {
		g := f.ConvPE[i]
		if i+1 < len(convs) {
			next := convs[i+1]
			k2 := next.Geom.KH * next.Geom.KW
			// SIMD_{i+1} | k2·ch′  ⇔  (SIMD/gcd(SIMD,k2)) | ch′.
			g = lcm(g, f.ConvSIMD[i+1]/gcd(f.ConvSIMD[i+1], k2))
		} else if len(f.DenseSIMD) > 0 {
			foot := shapes[i]
			g = lcm(g, f.DenseSIMD[0]/gcd(f.DenseSIMD[0], foot))
		}
		gs[i] = g
	}
	return gs, nil
}

// DenseGranularity returns, per *hidden* dense layer (every dense except
// the classifier head), the neuron-count step pruned widths must be a
// multiple of: PE_i must divide the new width and SIMD_{i+1} must divide
// the consumer's input — the fully-connected form of the paper's §IV-A1
// constraints.
func (f Folding) DenseGranularity(m *model.Model) ([]int, error) {
	if err := f.Validate(m); err != nil {
		return nil, err
	}
	denses := m.Net.Denses()
	if len(denses) == 0 {
		return nil, nil
	}
	gs := make([]int, len(denses)-1)
	for i := 0; i < len(denses)-1; i++ {
		gs[i] = lcm(f.DensePE[i], f.DenseSIMD[i+1])
	}
	return gs, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
