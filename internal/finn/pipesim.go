package finn

import "fmt"

// PipeStats summarizes an event-driven pipeline simulation.
type PipeStats struct {
	Frames         int
	TotalCycles    int64 // completion time of the last frame
	FirstLatency   int64 // cycles for the first frame (fill latency)
	SteadyII       int64 // measured inter-departure gap in steady state
	ThroughputFPS  float64
	LatencySeconds float64
}

// SimulatePipeline runs frames through the dataflow's stage pipeline using
// the classic recurrence
//
//	finish(i, s) = max(finish(i, s-1), finish(i-1, s)) + cycles(s)
//
// i.e. a stage starts a frame as soon as both the previous stage delivered
// it and the stage itself finished the previous frame. It validates the
// analytic II/latency model: measured steady-state II must equal the
// slowest stage and first-frame latency the sum of stages.
func (d *Dataflow) SimulatePipeline(frames int) (*PipeStats, error) {
	if frames <= 0 {
		return nil, fmt.Errorf("finn: SimulatePipeline needs a positive frame count, got %d", frames)
	}
	var stages []int64
	for _, m := range d.Modules {
		if c := m.CyclesPerFrame(); c > 0 {
			stages = append(stages, c)
		}
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("finn: %s has no compute stages", d.Name)
	}
	prevFinish := make([]int64, len(stages)) // finish(i-1, s)
	var first, last, prevLast int64
	for i := 0; i < frames; i++ {
		var t int64
		for s, c := range stages {
			if prevFinish[s] > t {
				t = prevFinish[s]
			}
			t += c
			prevFinish[s] = t
		}
		if i == 0 {
			first = t
		}
		prevLast = last
		last = t
	}
	stats := &PipeStats{
		Frames:       frames,
		TotalCycles:  last,
		FirstLatency: first,
	}
	if frames > 1 {
		stats.SteadyII = last - prevLast
	} else {
		stats.SteadyII = first
	}
	stats.ThroughputFPS = d.ClockHz / float64(stats.SteadyII)
	stats.LatencySeconds = float64(first) / d.ClockHz
	return stats, nil
}
