package finn

import (
	"testing"

	"repro/internal/model"
	"repro/internal/prune"
)

func paperModel(t *testing.T) *model.Model {
	t.Helper()
	m, err := model.CNVW2A2("cifar10", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func tinyModel(t *testing.T) *model.Model {
	t.Helper()
	m, err := model.TinyCNV("tiny", "tiny-syn", 2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDefaultFoldingLegal(t *testing.T) {
	for _, m := range []*model.Model{paperModel(t), tinyModel(t)} {
		f := DefaultFolding(m)
		if err := f.Validate(m); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestFoldingValidateRejects(t *testing.T) {
	m := tinyModel(t)
	f := DefaultFolding(m)
	f.ConvPE[0] = 3 // 8 % 3 != 0
	if err := f.Validate(m); err == nil {
		t.Fatal("illegal PE accepted")
	}
	f = DefaultFolding(m)
	f.ConvSIMD[0] = 5 // 9*3=27 % 5 != 0
	if err := f.Validate(m); err == nil {
		t.Fatal("illegal SIMD accepted")
	}
	f = DefaultFolding(m)
	f.ConvPE = f.ConvPE[:1]
	if err := f.Validate(m); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestMapFixedCNV(t *testing.T) {
	m := paperModel(t)
	df, err := Map(m, DefaultFolding(m), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if df.Flexible {
		t.Fatal("fixed map flagged flexible")
	}
	// 6 convs → 6 SWU + 6 MVTU, 2 pools, 3 denses, plus FIFOs.
	var swu, mvtuC, mvtuD, pool, fifo int
	for _, mod := range df.Modules {
		switch mod.Kind {
		case KindSWU:
			swu++
		case KindMVTUConv:
			mvtuC++
		case KindMVTUDense:
			mvtuD++
		case KindMaxPool:
			pool++
		case KindFIFO:
			fifo++
		}
	}
	if swu != 6 || mvtuC != 6 || mvtuD != 3 || pool != 2 {
		t.Fatalf("module census swu=%d mvtuC=%d mvtuD=%d pool=%d", swu, mvtuC, mvtuD, pool)
	}
	if fifo == 0 {
		t.Fatal("no FIFOs inserted")
	}
}

// TestCNVCapacityCalibration pins the paper-scale baseline throughput near
// the calibrated operating point (≈500 FPS at 100 MHz; see DESIGN.md).
// The edge experiments depend on this workload-to-capacity ratio.
func TestCNVCapacityCalibration(t *testing.T) {
	m := paperModel(t)
	df, err := Map(m, DefaultFolding(m), Options{})
	if err != nil {
		t.Fatal(err)
	}
	fps := df.FPS()
	if fps < 400 || fps > 600 {
		t.Fatalf("baseline CNV FPS = %.1f, want ≈500 (II=%d)", fps, df.IICycles())
	}
}

func TestPruningSpeedupQuadraticShape(t *testing.T) {
	m := paperModel(t)
	fold := DefaultFolding(m)
	base, err := Map(m, fold, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Build a 25%-pruned copy (channels 48, 48, 96, 96, 192, 192 — all
	// satisfy the folding granularity).
	gs, err := fold.ChannelGranularity(m)
	if err != nil {
		t.Fatal(err)
	}
	pr, _, err := prune.Shrink(m, 0.25, gs)
	if err != nil {
		t.Fatal(err)
	}
	prFold := DefaultFolding(pr)
	pruned, err := Map(pr, prFold, Options{})
	if err != nil {
		t.Fatal(err)
	}
	speedup := pruned.FPS() / base.FPS()
	// (1/0.75)² ≈ 1.78; allow the folding steps some slack.
	if speedup < 1.4 || speedup > 2.2 {
		t.Fatalf("25%% prune speedup = %.2f, want ≈1.78", speedup)
	}
}

func TestFlexibleMapAndSwitch(t *testing.T) {
	m := paperModel(t)
	fold := DefaultFolding(m)
	df, err := Map(m, fold, Options{Flexible: true})
	if err != nil {
		t.Fatal(err)
	}
	baseFPS := df.FPS()
	// Switch to 75% channels at runtime: no remap, just SetChannels.
	ch := make([]int, len(df.WorstChannels))
	for i, c := range df.WorstChannels {
		ch[i] = c * 3 / 4
	}
	if err := df.SetChannels(ch); err != nil {
		t.Fatal(err)
	}
	if sp := df.FPS() / baseFPS; sp < 1.4 || sp > 2.2 {
		t.Fatalf("flexible switch speedup = %.2f, want ≈1.78", sp)
	}
	// Switching back restores the original throughput.
	if err := df.SetChannels(df.WorstChannels); err != nil {
		t.Fatal(err)
	}
	if df.FPS() != baseFPS {
		t.Fatalf("restore: FPS %.2f != %.2f", df.FPS(), baseFPS)
	}
}

func TestFlexibleSwitchValidation(t *testing.T) {
	m := paperModel(t)
	df, err := Map(m, DefaultFolding(m), Options{Flexible: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := df.SetChannels([]int{1}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	too := append([]int(nil), df.WorstChannels...)
	too[0]++
	if err := df.SetChannels(too); err == nil {
		t.Fatal("channels above worst case accepted")
	}
	// Non-divisible channel count must be rejected and leave the dataflow
	// unchanged.
	bad := append([]int(nil), df.WorstChannels...)
	bad[1] = 63 // 63 % PE(8) != 0
	before := df.FPS()
	if err := df.SetChannels(bad); err == nil {
		t.Fatal("non-divisible channels accepted")
	}
	if df.FPS() != before {
		t.Fatal("failed switch mutated the dataflow")
	}
}

func TestFixedRejectsSwitch(t *testing.T) {
	m := paperModel(t)
	df, err := Map(m, DefaultFolding(m), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := df.SetChannels(df.WorstChannels); err == nil {
		t.Fatal("fixed accelerator accepted SetChannels")
	}
}

func TestFlexibleLatencyOverheadSmall(t *testing.T) {
	m := paperModel(t)
	fold := DefaultFolding(m)
	fixed, err := Map(m, fold, Options{})
	if err != nil {
		t.Fatal(err)
	}
	flex, err := Map(m, fold, Options{Flexible: true})
	if err != nil {
		t.Fatal(err)
	}
	ratio := flex.LatencySeconds() / fixed.LatencySeconds()
	if ratio <= 1.0 || ratio > 1.05 {
		t.Fatalf("flexible latency overhead ratio = %.4f, want (1.00, 1.05]", ratio)
	}
}

func TestPipelineSimulationMatchesAnalytic(t *testing.T) {
	for _, m := range []*model.Model{tinyModel(t), paperModel(t)} {
		df, err := Map(m, DefaultFolding(m), Options{})
		if err != nil {
			t.Fatal(err)
		}
		st, err := df.SimulatePipeline(5)
		if err != nil {
			t.Fatal(err)
		}
		if st.SteadyII != df.IICycles() {
			t.Errorf("%s: measured II %d != analytic %d", m.Name, st.SteadyII, df.IICycles())
		}
		if st.FirstLatency != df.LatencyCycles() {
			t.Errorf("%s: measured latency %d != analytic %d", m.Name, st.FirstLatency, df.LatencyCycles())
		}
	}
}

func TestSimulatePipelineValidation(t *testing.T) {
	m := tinyModel(t)
	df, err := Map(m, DefaultFolding(m), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.SimulatePipeline(0); err == nil {
		t.Fatal("zero frames accepted")
	}
}

func TestChannelGranularity(t *testing.T) {
	m := paperModel(t)
	fold := DefaultFolding(m)
	gs, err := fold.ChannelGranularity(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 6 {
		t.Fatalf("granularity entries = %d", len(gs))
	}
	for i, g := range gs {
		if g <= 0 {
			t.Fatalf("granularity[%d] = %d", i, g)
		}
		// Channels pruned to any multiple of g must keep all folding
		// constraints: check divisibility by this layer's PE.
		if g%fold.ConvPE[i] != 0 {
			t.Fatalf("granularity[%d]=%d not a multiple of PE %d", i, g, fold.ConvPE[i])
		}
	}
}

func TestMACsAndWeights(t *testing.T) {
	m := paperModel(t)
	df, err := Map(m, DefaultFolding(m), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if df.MACsPerFrame() <= 0 {
		t.Fatal("no MACs")
	}
	var w int64
	for _, mod := range df.Modules {
		w += mod.SynWeights()
		if mod.SynWeights() != mod.CurWeights() {
			t.Fatalf("fixed module %s has divergent weights", mod.Name)
		}
	}
	// CNV conv weights: 9·(3·64+64·64+64·128+128·128+128·256+256·256)
	// plus dense 256·512+512·512+512·10.
	wantConv := int64(9 * (3*64 + 64*64 + 64*128 + 128*128 + 128*256 + 256*256))
	wantDense := int64(256*512 + 512*512 + 512*10)
	if w != wantConv+wantDense {
		t.Fatalf("weights = %d, want %d", w, wantConv+wantDense)
	}
}

func TestModuleValidateErrors(t *testing.T) {
	bad := &Module{Kind: KindMVTUConv, Name: "m", SynInC: 4, SynOutC: 8,
		KH: 3, KW: 3, PE: 3, SIMD: 9, CurInC: 4, CurOutC: 8}
	if err := bad.Validate(); err == nil {
		t.Fatal("PE not dividing OutC accepted")
	}
	bad2 := &Module{Kind: KindMVTUConv, Name: "m", SynInC: 4, SynOutC: 8,
		KH: 3, KW: 3, PE: 8, SIMD: 7, CurInC: 4, CurOutC: 8}
	if err := bad2.Validate(); err == nil {
		t.Fatal("SIMD not dividing K²InC accepted")
	}
	neg := &Module{Kind: KindSWU, Name: "s", SynInC: 0}
	if err := neg.Validate(); err == nil {
		t.Fatal("zero channels accepted")
	}
}
