package finn

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/quant"
)

// DefaultClockHz is the paper's accelerator clock (ZCU104 at 100 MHz).
const DefaultClockHz = 100e6

// Options configure the CNN→dataflow mapping.
type Options struct {
	// Flexible builds AdaFlow's runtime-controllable templates
	// (synthesized to the model's worst-case channel counts); false builds
	// regular FINN fixed templates.
	Flexible bool
	// ClockHz defaults to DefaultClockHz when zero.
	ClockHz float64
	// FIFODepth inserts stream FIFOs of this depth between stages for the
	// resource model; 0 uses a heuristic depth.
	FIFODepth int
}

// Dataflow is a synthesized streaming accelerator: an ordered pipeline of
// modules plus clocking and provenance metadata.
type Dataflow struct {
	Name     string
	Model    string // model.Key() of the CNN it was synthesized from
	Flexible bool
	ClockHz  float64
	Modules  []*Module

	// WorstChannels are the per-convolution synthesis channel counts (the
	// initial model's channels for Flexible accelerators).
	WorstChannels []int
	// CurChannels is the per-convolution runtime configuration.
	CurChannels []int
}

// convFootprints returns, per convolution, the spatial footprint (elements
// per channel) of its output once it reaches the flatten boundary: the
// product of pooling reductions downstream does not matter — what pruning
// needs is the footprint at the flatten, which for CNN heads equals the
// spatial size of the last feature map. For every convolution we record
// the footprint its channels would have if flattened right after it (used
// only for the final convolution in practice).
func convFootprints(m *model.Model) ([]int, error) {
	shapes, err := nn.OutputShapeAfter(m.Net, m.InC, m.InH, m.InW)
	if err != nil {
		return nil, err
	}
	var foots []int
	// Walk layers; when a conv appears, track its index; the footprint of
	// a conv is the spatial size of the last rank-3 shape before flatten
	// if it is the final conv, else its own output spatial size.
	convAt := []int{}
	for li, nl := range m.Net.Layers {
		if _, ok := nl.Layer.(*nn.Conv2D); ok {
			convAt = append(convAt, li)
		}
	}
	for ci, li := range convAt {
		foot := shapes[li][1] * shapes[li][2]
		if ci == len(convAt)-1 {
			// Follow pooling until the shape goes flat.
			for lj := li; lj < len(m.Net.Layers); lj++ {
				if len(shapes[lj]) == 3 {
					foot = shapes[lj][1] * shapes[lj][2]
				} else {
					break
				}
			}
		}
		foots = append(foots, foot)
	}
	return foots, nil
}

// Map synthesizes a dataflow accelerator from a model with the given
// folding. Every convolution becomes an SWU + MVTU pair, every pooling
// layer a MaxPool module, every dense layer a dense MVTU; FIFOs are
// inserted between stages. ScaleShift/QuantAct layers are absorbed into
// the MVTUs' threshold ladders, as in FINN.
func Map(m *model.Model, fold Folding, opts Options) (*Dataflow, error) {
	if err := fold.Validate(m); err != nil {
		return nil, err
	}
	clock := opts.ClockHz
	if clock == 0 {
		clock = DefaultClockHz
	}
	worst := m.BaseChannels
	cur := m.ConvChannels()
	if opts.Flexible {
		if len(worst) != len(cur) {
			return nil, fmt.Errorf("finn: model %s has %d convolutions but %d base channel entries",
				m.Key(), len(cur), len(worst))
		}
		for i := range cur {
			if cur[i] > worst[i] {
				return nil, fmt.Errorf("finn: conv %d has %d channels exceeding worst case %d", i, cur[i], worst[i])
			}
		}
	} else {
		worst = cur
	}

	df := &Dataflow{
		Name:          fmt.Sprintf("%s-%s", m.Key(), kindName(opts.Flexible)),
		Model:         m.Key(),
		Flexible:      opts.Flexible,
		ClockHz:       clock,
		WorstChannels: append([]int(nil), worst...),
		CurChannels:   append([]int(nil), cur...),
	}

	abits := m.ABits
	if abits == 0 {
		abits = 32
	}
	// Weight bits are per layer: a layer carrying its own quantizer (e.g.
	// an 8-bit input layer in an otherwise binary network) overrides the
	// model default.
	layerWBits := func(q *quant.WeightQuantizer) int {
		if q != nil {
			return q.Bits
		}
		if m.WBits > 0 {
			return m.WBits
		}
		return 32
	}

	convIdx := -1
	denseIdx := -1
	prevConv := -1 // conv index currently defining the stream's channels
	foots, err := convFootprints(m)
	if err != nil {
		return nil, err
	}
	for li, nl := range m.Net.Layers {
		switch l := nl.Layer.(type) {
		case *nn.Conv2D:
			convIdx++
			// Synthesis-time input channels: worst case of the producing
			// conv (or the network input channels).
			synIn := l.Geom.InC
			if opts.Flexible && prevConv >= 0 {
				synIn = worst[prevConv]
			}
			synOut := l.OutC
			if opts.Flexible {
				synOut = worst[convIdx]
			}
			swu := &Module{
				Kind: KindSWU, Name: fmt.Sprintf("swu%d", convIdx),
				SynInC: synIn, SynOutC: synIn,
				InH: l.Geom.InH, InW: l.Geom.InW,
				OutH: l.Geom.OutH(), OutW: l.Geom.OutW(),
				KH: l.Geom.KH, KW: l.Geom.KW,
				SIMD: fold.ConvSIMD[convIdx], PE: 1,
				WBits: layerWBits(l.Quant), ABits: abits,
				Flexible: opts.Flexible,
				CurInC:   l.Geom.InC, CurOutC: l.Geom.InC,
				InChanConv: prevConv, OutChanConv: prevConv, InFoot: 1,
			}
			mvtu := &Module{
				Kind: KindMVTUConv, Name: fmt.Sprintf("mvtu%d", convIdx),
				SynInC: synIn, SynOutC: synOut,
				InH: l.Geom.InH, InW: l.Geom.InW,
				OutH: l.Geom.OutH(), OutW: l.Geom.OutW(),
				KH: l.Geom.KH, KW: l.Geom.KW,
				PE: fold.ConvPE[convIdx], SIMD: fold.ConvSIMD[convIdx],
				WBits: layerWBits(l.Quant), ABits: abits,
				Flexible: opts.Flexible,
				CurInC:   l.Geom.InC, CurOutC: l.OutC,
				InChanConv: prevConv, OutChanConv: convIdx, InFoot: 1,
			}
			df.Modules = append(df.Modules, swu, mvtu, fifoAfter(mvtu, opts))
			prevConv = convIdx
		case *nn.MaxPool2D:
			synC := l.Geom.InC
			if opts.Flexible && prevConv >= 0 {
				synC = worst[prevConv]
			}
			mp := &Module{
				Kind: KindMaxPool, Name: fmt.Sprintf("pool@%d", li),
				SynInC: synC, SynOutC: synC,
				InH: l.Geom.InH, InW: l.Geom.InW,
				OutH: l.Geom.OutH(), OutW: l.Geom.OutW(),
				KH: l.Geom.KH, KW: l.Geom.KW,
				PE: 1, SIMD: 1,
				WBits: layerWBits(nil), ABits: abits,
				Flexible: opts.Flexible,
				CurInC:   l.Geom.InC, CurOutC: l.Geom.InC,
				InChanConv: prevConv, OutChanConv: prevConv, InFoot: 1,
			}
			df.Modules = append(df.Modules, mp, fifoAfter(mp, opts))
		case *nn.Dense:
			denseIdx++
			synIn := l.In
			foot := 1
			inConv := -1
			if denseIdx == 0 && prevConv >= 0 {
				foot = foots[prevConv]
				inConv = prevConv
				if opts.Flexible {
					synIn = worst[prevConv] * foot
				}
			}
			mv := &Module{
				Kind: KindMVTUDense, Name: fmt.Sprintf("fc%d", denseIdx),
				SynInC: synIn, SynOutC: l.Out,
				InH: 1, InW: 1, OutH: 1, OutW: 1, KH: 1, KW: 1,
				PE: fold.DensePE[denseIdx], SIMD: fold.DenseSIMD[denseIdx],
				WBits: layerWBits(l.Quant), ABits: abits,
				Flexible: opts.Flexible,
				CurInC:   l.In, CurOutC: l.Out,
				InChanConv: inConv, OutChanConv: -1, InFoot: foot,
			}
			df.Modules = append(df.Modules, mv, fifoAfter(mv, opts))
			prevConv = -1 // dense outputs are never channel-bound
		default:
			// ScaleShift, QuantAct, ReLU, Flatten: absorbed.
		}
	}
	for _, mod := range df.Modules {
		if err := mod.Validate(); err != nil {
			return nil, err
		}
	}
	return df, nil
}

// fifoAfter builds the inter-stage FIFO following a module.
func fifoAfter(m *Module, opts Options) *Module {
	depth := opts.FIFODepth
	if depth == 0 {
		depth = 32
	}
	return &Module{
		Kind: KindFIFO, Name: m.Name + ".fifo",
		SynInC: m.SynOutC, SynOutC: m.SynOutC,
		InH: m.OutH, InW: m.OutW, OutH: m.OutH, OutW: m.OutW,
		KH: 1, KW: 1, PE: depth, SIMD: 1,
		WBits: m.WBits, ABits: m.ABits,
		Flexible: m.Flexible,
		CurInC:   m.CurOutC, CurOutC: m.CurOutC,
		InChanConv: m.OutChanConv, OutChanConv: m.OutChanConv, InFoot: 1,
	}
}

func kindName(flexible bool) string {
	if flexible {
		return "flexible"
	}
	return "fixed"
}

// IICycles returns the pipeline initiation interval: the slowest module's
// cycles per frame.
func (d *Dataflow) IICycles() int64 {
	var max int64
	for _, m := range d.Modules {
		if c := m.CyclesPerFrame(); c > max {
			max = c
		}
	}
	return max
}

// LatencyCycles returns the end-to-end latency of one frame through the
// empty pipeline: the sum of module cycles.
func (d *Dataflow) LatencyCycles() int64 {
	var sum int64
	for _, m := range d.Modules {
		sum += m.CyclesPerFrame()
	}
	return sum
}

// FPS returns the steady-state throughput in frames per second.
func (d *Dataflow) FPS() float64 {
	ii := d.IICycles()
	if ii == 0 {
		return 0
	}
	return d.ClockHz / float64(ii)
}

// LatencySeconds returns single-frame latency in seconds.
func (d *Dataflow) LatencySeconds() float64 {
	return float64(d.LatencyCycles()) / d.ClockHz
}

// MACsPerFrame returns total multiply-accumulates per frame at the current
// channel configuration.
func (d *Dataflow) MACsPerFrame() int64 {
	var sum int64
	for _, m := range d.Modules {
		sum += m.MACs()
	}
	return sum
}

// Refold updates the dataflow's PE/SIMD assignment in place to match f,
// returning the indices of the modules whose folding actually changed.
// Geometry, precision, and the runtime channel configuration are
// untouched; only the changed modules are re-validated (a module's folding
// constraints depend solely on its own fields, so unchanged modules stay
// valid by induction). This is the mutation primitive behind the folding
// explorer's incremental re-evaluation: a greedy unfold step touches one
// layer, so re-mapping the whole network per step is wasted work.
//
// On a validation failure the dataflow is rolled back to its previous
// folding and an error is returned.
func (d *Dataflow) Refold(f Folding) ([]int, error) {
	convs, denses := 0, 0
	for _, m := range d.Modules {
		switch m.Kind {
		case KindSWU:
			convs++
		case KindMVTUDense:
			denses++
		}
	}
	if len(f.ConvPE) != convs || len(f.ConvSIMD) != convs {
		return nil, fmt.Errorf("finn: refold has %d/%d conv entries for %d convolutions",
			len(f.ConvPE), len(f.ConvSIMD), convs)
	}
	if len(f.DensePE) != denses || len(f.DenseSIMD) != denses {
		return nil, fmt.Errorf("finn: refold has %d/%d dense entries for %d dense layers",
			len(f.DensePE), len(f.DenseSIMD), denses)
	}
	type saved struct {
		idx      int
		pe, simd int
	}
	var old []saved
	var changed []int
	conv, dense := -1, -1
	for i, m := range d.Modules {
		var wantPE, wantSIMD int
		switch m.Kind {
		case KindSWU:
			conv++
			wantPE, wantSIMD = m.PE, f.ConvSIMD[conv]
		case KindMVTUConv:
			wantPE, wantSIMD = f.ConvPE[conv], f.ConvSIMD[conv]
		case KindMVTUDense:
			dense++
			wantPE, wantSIMD = f.DensePE[dense], f.DenseSIMD[dense]
		default:
			continue
		}
		if m.PE == wantPE && m.SIMD == wantSIMD {
			continue
		}
		old = append(old, saved{i, m.PE, m.SIMD})
		m.PE, m.SIMD = wantPE, wantSIMD
		changed = append(changed, i)
	}
	for _, i := range changed {
		if err := d.Modules[i].Validate(); err != nil {
			for _, s := range old {
				d.Modules[s.idx].PE, d.Modules[s.idx].SIMD = s.pe, s.simd
			}
			return nil, err
		}
	}
	return changed, nil
}

// SetChannels reconfigures a Flexible accelerator to a model version with
// the given per-convolution output channel counts. It validates every
// module's runtime folding constraints; fixed accelerators reject any
// change.
func (d *Dataflow) SetChannels(channels []int) error {
	if !d.Flexible {
		return fmt.Errorf("finn: %s is a fixed accelerator; model switching requires FPGA reconfiguration", d.Name)
	}
	if len(channels) != len(d.WorstChannels) {
		return fmt.Errorf("finn: %s has %d convolutions, got %d channel counts", d.Name, len(d.WorstChannels), len(channels))
	}
	for i, ch := range channels {
		if ch <= 0 || ch > d.WorstChannels[i] {
			return fmt.Errorf("finn: conv %d channels %d out of (0,%d]", i, ch, d.WorstChannels[i])
		}
	}
	// Apply tentatively, validate, roll back on failure.
	type saved struct{ in, out int }
	old := make([]saved, len(d.Modules))
	for i, m := range d.Modules {
		old[i] = saved{m.CurInC, m.CurOutC}
		if m.InChanConv >= 0 {
			m.CurInC = channels[m.InChanConv] * m.InFoot
		}
		if m.OutChanConv >= 0 {
			m.CurOutC = channels[m.OutChanConv]
		}
	}
	for _, m := range d.Modules {
		if err := m.Validate(); err != nil {
			for i, mm := range d.Modules {
				mm.CurInC, mm.CurOutC = old[i].in, old[i].out
			}
			return err
		}
	}
	d.CurChannels = append(d.CurChannels[:0], channels...)
	return nil
}
