package finn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// randomLegalFolding draws a legal folding for the model.
func randomLegalFolding(m *model.Model, rng *rand.Rand) Folding {
	convs := m.Net.Convs()
	denses := m.Net.Denses()
	f := Folding{
		ConvPE:    make([]int, len(convs)),
		ConvSIMD:  make([]int, len(convs)),
		DensePE:   make([]int, len(denses)),
		DenseSIMD: make([]int, len(denses)),
	}
	pick := func(n int) int {
		var ds []int
		for d := 1; d <= n; d++ {
			if n%d == 0 {
				ds = append(ds, d)
			}
		}
		return ds[rng.Intn(len(ds))]
	}
	for i, c := range convs {
		f.ConvPE[i] = pick(c.OutC)
		f.ConvSIMD[i] = pick(c.Geom.KH * c.Geom.KW * c.Geom.InC)
	}
	for i, d := range denses {
		f.DensePE[i] = pick(d.Out)
		f.DenseSIMD[i] = pick(d.In)
	}
	return f
}

// Property: every legal folding maps successfully, and throughput is
// positive with latency ≥ II.
func TestQuickLegalFoldingsMap(t *testing.T) {
	m, err := model.TinyCNV("tiny", "tiny-syn", 2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := randomLegalFolding(m, rng)
		if f.Validate(m) != nil {
			return false
		}
		df, err := Map(m, f, Options{})
		if err != nil {
			return false
		}
		return df.FPS() > 0 && df.LatencyCycles() >= df.IICycles()
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: increasing any PE or SIMD to a larger divisor never slows the
// dataflow down (monotonicity of the cycle model in parallelism).
func TestQuickUnfoldingMonotone(t *testing.T) {
	m, err := model.TinyCNV("tiny", "tiny-syn", 2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 40; iter++ {
		f := randomLegalFolding(m, rng)
		df, err := Map(m, f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		base := df.IICycles()
		// Bump one conv's PE to the next divisor if any.
		g := f.Clone()
		ci := rng.Intn(len(g.ConvPE))
		outC := m.Net.Convs()[ci].OutC
		next := 0
		for d := g.ConvPE[ci] + 1; d <= outC; d++ {
			if outC%d == 0 {
				next = d
				break
			}
		}
		if next == 0 {
			continue
		}
		g.ConvPE[ci] = next
		df2, err := Map(m, g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if df2.IICycles() > base {
			t.Fatalf("unfolding conv %d PE %d→%d increased II %d→%d",
				ci, f.ConvPE[ci], next, base, df2.IICycles())
		}
	}
}

// Property: SetChannels with the worst-case channels always restores the
// original throughput, after any sequence of legal switches.
func TestQuickSetChannelsRestores(t *testing.T) {
	m, err := model.CNVW2A2("cifar10", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	fold := DefaultFolding(m)
	gs, err := fold.ChannelGranularity(m)
	if err != nil {
		t.Fatal(err)
	}
	df, err := Map(m, fold, Options{Flexible: true})
	if err != nil {
		t.Fatal(err)
	}
	baseFPS := df.FPS()
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 30; iter++ {
		ch := make([]int, len(df.WorstChannels))
		for i, w := range df.WorstChannels {
			// Random multiple of the granularity in (0, worst].
			steps := w / gs[i]
			ch[i] = gs[i] * (1 + rng.Intn(steps))
		}
		if err := df.SetChannels(ch); err != nil {
			t.Fatalf("legal channels %v rejected: %v", ch, err)
		}
		if df.FPS() < baseFPS-1e-9 {
			t.Fatalf("pruned channels %v slower than worst case", ch)
		}
		if err := df.SetChannels(df.WorstChannels); err != nil {
			t.Fatal(err)
		}
		if df.FPS() != baseFPS {
			t.Fatalf("restore failed: %v != %v", df.FPS(), baseFPS)
		}
	}
}

// TestMixedPrecisionPropagatesToModules: a model with an 8-bit input layer
// maps to a dataflow whose first MVTU carries 8-bit weights while the rest
// stay at the model default.
func TestMixedPrecisionPropagatesToModules(t *testing.T) {
	m, err := model.Build(model.Config{
		Name: "mixed", Dataset: "tiny-syn", WBits: 2, ABits: 2,
		InC: 3, InH: 8, InW: 8, Classes: 4,
		ConvChannels: []int{8, 16}, PoolAfter: []int{1}, DenseSizes: []int{32},
		InputWBits: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	df, err := Map(m, DefaultFolding(m), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var first, second *Module
	for _, mod := range df.Modules {
		switch mod.Name {
		case "mvtu0":
			first = mod
		case "mvtu1":
			second = mod
		}
	}
	if first == nil || second == nil {
		t.Fatal("MVTUs not found")
	}
	if first.WBits != 8 || second.WBits != 2 {
		t.Fatalf("module bits = %d/%d, want 8/2", first.WBits, second.WBits)
	}
}

func TestDescribe(t *testing.T) {
	m, err := model.CNVW2A2("cifar10", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	df, err := Map(m, DefaultFolding(m), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	df.Describe(&buf)
	out := buf.String()
	for _, want := range []string{"bottleneck", "mvtu1", "stream FIFOs", "II"} {
		if !strings.Contains(out, want) {
			t.Fatalf("describe output missing %q:\n%s", want, out)
		}
	}
}

func TestSizeFIFOs(t *testing.T) {
	m, err := model.CNVW2A2("cifar10", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	df, err := Map(m, DefaultFolding(m), Options{})
	if err != nil {
		t.Fatal(err)
	}
	depths, err := df.SizeFIFOs()
	if err != nil {
		t.Fatal(err)
	}
	if len(depths) == 0 {
		t.Fatal("no FIFOs sized")
	}
	for i, d := range depths {
		if d < minFIFODepth || d > maxFIFODepth {
			t.Fatalf("fifo %d depth %d out of [%d,%d]", i, d, minFIFODepth, maxFIFODepth)
		}
	}
	// At least one FIFO should be deeper than the minimum on this layer
	// mix (there are real rate mismatches).
	deeper := false
	for _, d := range depths {
		if d > minFIFODepth {
			deeper = true
		}
	}
	if !deeper {
		t.Fatal("all FIFOs at minimum depth; sizing vacuous")
	}
}
