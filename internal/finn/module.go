// Package finn models FINN-style streaming dataflow accelerators: the
// hardware modules a CNN maps to (Sliding Window Units, Matrix-Vector-
// Threshold Units, MaxPool units, FIFOs), their PE/SIMD folding, cycle
// behaviour, and AdaFlow's Flexible variants whose channel counts are
// runtime-controllable.
//
// The cycle model is FINN's folding arithmetic: an MVTU executing a matrix
// of shape (K²·InC) × OutC over OutH·OutW pixels with SIMD lanes and PE
// processing elements needs
//
//	OutH·OutW · (K²·InC / SIMD) · (OutC / PE)
//
// cycles per frame. A dataflow pipeline's throughput is set by its slowest
// module (the initiation interval) and its latency by the sum over
// modules. Flexible modules are synthesized for worst-case channel counts;
// at runtime fewer channels mean fewer pipeline iterations for
// MVTUs/SWUs (faster) but unchanged trip counts for channel-unrolled
// MaxPool units, plus a small control overhead — exactly the behaviour of
// the paper's modified HLS templates (Fig. 3).
package finn

import "fmt"

// ModuleKind enumerates the hardware module templates.
type ModuleKind int

// Module kinds, in stream order of a typical conv block.
const (
	KindSWU ModuleKind = iota
	KindMVTUConv
	KindMVTUDense
	KindMaxPool
	KindFIFO
)

// String returns the FINN-ish template name.
func (k ModuleKind) String() string {
	switch k {
	case KindSWU:
		return "SWU"
	case KindMVTUConv:
		return "MVTU(conv)"
	case KindMVTUDense:
		return "MVTU(dense)"
	case KindMaxPool:
		return "MaxPool"
	case KindFIFO:
		return "FIFO"
	default:
		return fmt.Sprintf("ModuleKind(%d)", int(k))
	}
}

// Flexible-latency overhead factors: the runtime-controllable if-guards
// lengthen the pipeline slightly. Calibrated so end-to-end latency of a
// Flexible accelerator is ~0.7 % worse on average than its Fixed
// counterpart, up to a few percent for channel-unrolled modules (paper
// §VI-A reports 0.67 % average, 3.7 % max).
const (
	flexOverheadStream  = 0.0067 // SWU / MVTU: guard on pipeline feeding
	flexOverheadUnroll  = 0.037  // MaxPool: guard on every unrolled unit
	flexChannelPortBits = 16     // extra runtime channel port width (paper §IV-A2)
)

// mvtuControlOverhead models MVTU pipeline ramp-up and control bubbles on
// top of the ideal folding cycle count. Calibrated so the paper-scale
// CNVW2A2 baseline lands at the ≈461 FPS capacity the paper's Table I
// frame-loss figures imply for its workload (see DESIGN.md).
const mvtuControlOverhead = 0.08

// Module is one hardware stage of a dataflow accelerator.
//
// Syn* fields are synthesis-time values (worst case for Flexible modules);
// Cur* fields are the currently configured channel counts, which equal the
// Syn values for Fixed modules and can be lowered at runtime for Flexible
// ones.
type Module struct {
	Kind ModuleKind
	Name string

	// Geometry at synthesis time.
	SynInC, SynOutC int // channel counts (dense: flattened in/out sizes)
	InH, InW        int
	OutH, OutW      int
	KH, KW          int

	// Folding.
	PE   int
	SIMD int

	// Precision.
	WBits, ABits int

	// Flexible marks a runtime-controllable AdaFlow template.
	Flexible bool

	// Runtime channel configuration.
	CurInC, CurOutC int

	// Channel binding: index of the model convolution whose output
	// channels determine CurInC / CurOutC (-1 when fixed by the network
	// input or a dense output). InFoot is the flattened spatial footprint
	// multiplier for dense inputs (1 elsewhere).
	InChanConv  int
	OutChanConv int
	InFoot      int
}

// Validate checks synthesis-time invariants: positive geometry and FINN's
// folding divisibility rules.
func (m *Module) Validate() error {
	if m.SynInC <= 0 {
		return fmt.Errorf("finn: %s %q: non-positive input channels %d", m.Kind, m.Name, m.SynInC)
	}
	if m.CurInC <= 0 || m.CurInC > m.SynInC {
		return fmt.Errorf("finn: %s %q: runtime input channels %d out of (0,%d]", m.Kind, m.Name, m.CurInC, m.SynInC)
	}
	switch m.Kind {
	case KindSWU:
		if m.SIMD <= 0 || (m.KH*m.KW*m.SynInC)%m.SIMD != 0 {
			return fmt.Errorf("finn: SWU %q: SIMD %d does not divide K²·InC = %d", m.Name, m.SIMD, m.KH*m.KW*m.SynInC)
		}
	case KindMVTUConv:
		if m.PE <= 0 || m.SynOutC%m.PE != 0 {
			return fmt.Errorf("finn: MVTU %q: PE %d does not divide OutC %d", m.Name, m.PE, m.SynOutC)
		}
		if m.SIMD <= 0 || (m.KH*m.KW*m.SynInC)%m.SIMD != 0 {
			return fmt.Errorf("finn: MVTU %q: SIMD %d does not divide K²·InC = %d", m.Name, m.SIMD, m.KH*m.KW*m.SynInC)
		}
	case KindMVTUDense:
		if m.PE <= 0 || m.SynOutC%m.PE != 0 {
			return fmt.Errorf("finn: MVTU %q: PE %d does not divide Out %d", m.Name, m.PE, m.SynOutC)
		}
		if m.SIMD <= 0 || m.SynInC%m.SIMD != 0 {
			return fmt.Errorf("finn: MVTU %q: SIMD %d does not divide In %d", m.Name, m.SIMD, m.SynInC)
		}
	case KindMaxPool, KindFIFO:
		// No folding constraints.
	default:
		return fmt.Errorf("finn: module %q has unknown kind %d", m.Name, int(m.Kind))
	}
	if m.Flexible {
		return m.validateRuntime()
	}
	if m.CurInC != m.SynInC || m.CurOutC != m.SynOutC {
		return fmt.Errorf("finn: fixed module %q has runtime channels differing from synthesis", m.Name)
	}
	return nil
}

// validateRuntime checks that the current channel configuration is legal
// for the synthesized folding.
func (m *Module) validateRuntime() error {
	if m.CurOutC <= 0 || m.CurOutC > m.SynOutC {
		return fmt.Errorf("finn: %s %q: runtime output channels %d out of (0,%d]", m.Kind, m.Name, m.CurOutC, m.SynOutC)
	}
	switch m.Kind {
	case KindSWU:
		if (m.KH*m.KW*m.CurInC)%m.SIMD != 0 {
			return fmt.Errorf("finn: SWU %q: runtime K²·InC %d not divisible by SIMD %d", m.Name, m.KH*m.KW*m.CurInC, m.SIMD)
		}
	case KindMVTUConv:
		if m.CurOutC%m.PE != 0 {
			return fmt.Errorf("finn: MVTU %q: runtime OutC %d not divisible by PE %d", m.Name, m.CurOutC, m.PE)
		}
		if (m.KH*m.KW*m.CurInC)%m.SIMD != 0 {
			return fmt.Errorf("finn: MVTU %q: runtime K²·InC %d not divisible by SIMD %d", m.Name, m.KH*m.KW*m.CurInC, m.SIMD)
		}
	case KindMVTUDense:
		if m.CurOutC%m.PE != 0 {
			return fmt.Errorf("finn: MVTU %q: runtime Out %d not divisible by PE %d", m.Name, m.CurOutC, m.PE)
		}
		if m.CurInC%m.SIMD != 0 {
			return fmt.Errorf("finn: MVTU %q: runtime In %d not divisible by SIMD %d", m.Name, m.CurInC, m.SIMD)
		}
	}
	return nil
}

// CyclesPerFrame returns the module's cycles to process one frame at the
// current channel configuration, including the flexible control overhead.
func (m *Module) CyclesPerFrame() int64 {
	var c int64
	switch m.Kind {
	case KindSWU:
		// Stream-in bound: every input pixel crosses the SWU once per
		// SIMD-fold of its channels.
		folds := int64((m.KH*m.KW*m.CurInC + m.SIMD - 1) / m.SIMD)
		c = int64(m.InH*m.InW) * folds / int64(m.KH*m.KW)
		if c < 1 {
			c = 1
		}
	case KindMVTUConv:
		folds := int64((m.KH*m.KW*m.CurInC + m.SIMD - 1) / m.SIMD)
		nf := int64((m.CurOutC + m.PE - 1) / m.PE)
		c = int64(m.OutH*m.OutW) * folds * nf
		c += int64(float64(c) * mvtuControlOverhead)
	case KindMVTUDense:
		folds := int64((m.CurInC + m.SIMD - 1) / m.SIMD)
		nf := int64((m.CurOutC + m.PE - 1) / m.PE)
		c = folds * nf
		c += int64(float64(c) * mvtuControlOverhead)
	case KindMaxPool:
		// Channel-unrolled: trip count is the pixel count regardless of
		// how many channels are actually fed (paper Fig. 3(b)).
		c = int64(m.InH * m.InW)
	case KindFIFO:
		return 0
	}
	if m.Flexible {
		ov := flexOverheadStream
		if m.Kind == KindMaxPool {
			ov = flexOverheadUnroll
		}
		c = c + int64(float64(c)*ov) + 1
	}
	return c
}

// MACs returns multiply-accumulate operations per frame at the current
// channel configuration (zero for non-compute modules). This drives the
// dynamic-energy model in internal/synth.
func (m *Module) MACs() int64 {
	switch m.Kind {
	case KindMVTUConv:
		return int64(m.OutH*m.OutW) * int64(m.KH*m.KW) * int64(m.CurInC) * int64(m.CurOutC)
	case KindMVTUDense:
		return int64(m.CurInC) * int64(m.CurOutC)
	default:
		return 0
	}
}

// SynWeights returns the number of weight values stored at synthesis time
// (worst case for flexible modules) — the quantity that occupies BRAM and
// LUTRAM.
func (m *Module) SynWeights() int64 {
	switch m.Kind {
	case KindMVTUConv:
		return int64(m.KH*m.KW) * int64(m.SynInC) * int64(m.SynOutC)
	case KindMVTUDense:
		return int64(m.SynInC) * int64(m.SynOutC)
	default:
		return 0
	}
}

// CurWeights returns the weight values of the currently configured model.
func (m *Module) CurWeights() int64 {
	switch m.Kind {
	case KindMVTUConv:
		return int64(m.KH*m.KW) * int64(m.CurInC) * int64(m.CurOutC)
	case KindMVTUDense:
		return int64(m.CurInC) * int64(m.CurOutC)
	default:
		return 0
	}
}

// String summarizes the module.
func (m *Module) String() string {
	return fmt.Sprintf("%s[%s in=%d/%d out=%d/%d PE=%d SIMD=%d flex=%v]",
		m.Name, m.Kind, m.CurInC, m.SynInC, m.CurOutC, m.SynOutC, m.PE, m.SIMD, m.Flexible)
}
