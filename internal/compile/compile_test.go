package compile

import (
	"math"
	"math/rand"
	"os"
	"testing"

	"repro/internal/dataset"
	"repro/internal/finn"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/tensor"
	"repro/internal/train"
)

// The compiled dataflow programs reproduce the float fake-quantized
// reference, so the logit comparisons below pin the nn engine to that path;
// the integer fast path is only quantization-tolerance close, not 1e-3
// close. Its own agreement bound is tested in internal/nn.
func TestMain(m *testing.M) {
	nn.SetInt8GEMM(false)
	os.Exit(m.Run())
}

func trainedTiny(t *testing.T, wbits int, seed int64) (*model.Model, *dataset.Dataset) {
	t.Helper()
	ds := dataset.TinyDataset(seed)
	m, err := model.TinyCNV("tiny", ds.Name, wbits, ds.Classes, seed)
	if err != nil {
		t.Fatal(err)
	}
	opts := train.DefaultOptions()
	opts.Epochs = 2
	opts.Samples = 80
	opts.Seed = seed
	tr, err := train.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Fit(m, ds); err != nil {
		t.Fatal(err)
	}
	return m, ds
}

// agreeOn compares program logits against nn logits on n dataset samples,
// requiring identical argmax and close logits.
func agreeOn(t *testing.T, p *Program, m *model.Model, ds *dataset.Dataset, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		x, _ := ds.TestSample(i)
		want, err := m.Net.Forward(x, false)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Run(x)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("sample %d: logit count %d vs %d", i, got.Len(), want.Len())
		}
		if got.ArgMax() != want.ArgMax() {
			t.Fatalf("sample %d: argmax %d vs %d (logits %v vs %v)",
				i, got.ArgMax(), want.ArgMax(), got.Data(), want.Data())
		}
		for j := range got.Data() {
			if d := math.Abs(float64(got.At(j) - want.At(j))); d > 1e-3 {
				t.Fatalf("sample %d logit %d: %v vs %v", i, j, got.At(j), want.At(j))
			}
		}
	}
}

// TestCompiledMatchesNNFixed is the core functional-verification property:
// the compiled dataflow (threshold ladders, SWU windows, MVTU loops)
// computes exactly what the layer-by-layer nn engine computes.
func TestCompiledMatchesNNFixed(t *testing.T) {
	for _, wbits := range []int{1, 2} {
		m, ds := trainedTiny(t, wbits, int64(40+wbits))
		p, err := Compile(m, false)
		if err != nil {
			t.Fatal(err)
		}
		if p.Flexible {
			t.Fatal("fixed program flagged flexible")
		}
		agreeOn(t, p, m, ds, 30)
	}
}

// TestCompiledMatchesNNFlexiblePruned verifies the paper's Fig. 3
// semantics: a program synthesized to worst-case channels, loaded with a
// pruned model (zero-padded weights + runtime channel guards), computes
// exactly what the pruned model computes.
func TestCompiledMatchesNNFlexiblePruned(t *testing.T) {
	m, ds := trainedTiny(t, 2, 77)
	fold := finn.DefaultFolding(m)
	gs, err := fold.ChannelGranularity(m)
	if err != nil {
		t.Fatal(err)
	}
	pruned, _, err := prune.Shrink(m, 0.5, gs)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(pruned, true)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Flexible {
		t.Fatal("flexible program not flagged")
	}
	if p.WorstChannels[1] != 16 || p.CurChannels[1] != 8 {
		t.Fatalf("channels worst=%v cur=%v", p.WorstChannels, p.CurChannels)
	}
	agreeOn(t, p, pruned, ds, 30)
}

// TestFlexibleLoadModelSwitch verifies the fast model switch: one flexible
// program serves the unpruned and the pruned version in turn, each time
// matching the respective nn model.
func TestFlexibleLoadModelSwitch(t *testing.T) {
	m, ds := trainedTiny(t, 2, 91)
	fold := finn.DefaultFolding(m)
	gs, err := fold.ChannelGranularity(m)
	if err != nil {
		t.Fatal(err)
	}
	pruned, _, err := prune.Shrink(m, 0.5, gs)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m, true)
	if err != nil {
		t.Fatal(err)
	}
	agreeOn(t, p, m, ds, 10)
	if err := p.LoadModel(pruned); err != nil {
		t.Fatal(err)
	}
	agreeOn(t, p, pruned, ds, 10)
	if err := p.LoadModel(m); err != nil {
		t.Fatal(err)
	}
	agreeOn(t, p, m, ds, 10)
}

func TestFixedProgramRejectsLoadModel(t *testing.T) {
	m, _ := trainedTiny(t, 2, 5)
	p, err := Compile(m, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.LoadModel(m); err == nil {
		t.Fatal("fixed program accepted a model switch")
	}
}

func TestLoadModelRejectsForeignModel(t *testing.T) {
	m, _ := trainedTiny(t, 2, 6)
	p, err := Compile(m, true)
	if err != nil {
		t.Fatal(err)
	}
	other, err := model.TinyCNV("other", "tiny-syn", 2, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Same architecture: allowed. Different worst-case channels: rejected.
	foreign, err := model.Build(model.Config{
		Name: "wide", Dataset: "tiny-syn", WBits: 2, ABits: 2,
		InC: 3, InH: 8, InW: 8, Classes: 4,
		ConvChannels: []int{16, 16}, PoolAfter: []int{1}, DenseSizes: []int{32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.LoadModel(foreign); err == nil {
		t.Fatal("foreign worst-case channels accepted")
	}
	if err := p.LoadModel(other); err != nil {
		t.Fatalf("same-architecture model rejected: %v", err)
	}
}

func TestRunValidatesInputShape(t *testing.T) {
	m, _ := trainedTiny(t, 2, 7)
	p, err := Compile(m, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(tensor.New(1, 8, 8)); err == nil {
		t.Fatal("wrong channel count accepted")
	}
	if _, err := p.Run(tensor.New(3, 4, 4)); err == nil {
		t.Fatal("wrong spatial size accepted")
	}
}

func TestCompileValidation(t *testing.T) {
	if _, err := Compile(nil, false); err == nil {
		t.Fatal("nil model accepted")
	}
	// Float weights with quantized activations still lower fine (the
	// ladders only need the activation quantizer)…
	m, err := model.TinyCNV("floatw", "tiny-syn", 0, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(m, false); err != nil {
		t.Fatalf("float-weight model rejected: %v", err)
	}
	// …but ReLU activations (no QuantAct to absorb) cannot become
	// threshold ladders and must be rejected.
	relu, err := model.Build(model.Config{
		Name: "relu", Dataset: "tiny-syn", WBits: 2, ABits: 0,
		InC: 3, InH: 8, InW: 8, Classes: 4,
		ConvChannels: []int{8, 16}, PoolAfter: []int{1}, DenseSizes: []int{32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(relu, false); err == nil {
		t.Fatal("ReLU model accepted")
	}
}

// TestCompiledMLPMatchesNN: dense-only (TFC-style) models lower and
// execute correctly too.
func TestCompiledMLPMatchesNN(t *testing.T) {
	m, err := model.BuildMLP(model.Config{
		Name: "mlp", Dataset: "tiny-syn", WBits: 2, ABits: 2,
		InC: 3, InH: 8, InW: 8, Classes: 4,
		DenseSizes: []int{32, 16}, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.TinyDataset(9)
	opts := train.DefaultOptions()
	opts.Epochs = 2
	opts.Samples = 80
	tr, err := train.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Fit(m, ds); err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m, false)
	if err != nil {
		t.Fatal(err)
	}
	agreeOn(t, p, m, ds, 25)
}

func TestThresholdsCode(t *testing.T) {
	up := Thresholds{Asc: []float64{0.5, 1.5, 2.5}, Up: true}
	cases := []struct {
		a    float64
		want int
	}{{-1, 0}, {0.6, 1}, {2.0, 2}, {99, 3}}
	for _, c := range cases {
		if got := up.Code(c.a); got != c.want {
			t.Errorf("up Code(%v) = %d, want %d", c.a, got, c.want)
		}
	}
	down := Thresholds{Asc: []float64{-2.5, -1.5, -0.5}, Up: false}
	// Down ladders count thresholds the accumulator falls below.
	if down.Code(-3) != 3 || down.Code(-2) != 2 || down.Code(0) != 0 {
		t.Fatalf("down ladder wrong: %d %d %d", down.Code(-3), down.Code(-2), down.Code(0))
	}
}

// TestNegativeGammaLadder verifies the flipped comparison for negative
// batch-norm gains against the nn reference on a crafted layer.
func TestNegativeGammaLadder(t *testing.T) {
	m, ds := trainedTiny(t, 2, 21)
	// Force a negative gain and a nonzero shift on one channel of the
	// first ScaleShift.
	ss := findFirstScaleShift(t, m)
	ss.Gamma.Value.Set(-1.3, 0)
	ss.Beta.Value.Set(0.7, 0)
	ss.Gamma.Value.Set(0, 1) // and a zero gain on channel 1
	ss.Beta.Value.Set(1.2, 1)
	p, err := Compile(m, false)
	if err != nil {
		t.Fatal(err)
	}
	agreeOn(t, p, m, ds, 20)
}

func findFirstScaleShift(t *testing.T, m *model.Model) *nn.ScaleShift {
	t.Helper()
	for _, nl := range m.Net.Layers {
		if ss, ok := nl.Layer.(*nn.ScaleShift); ok {
			return ss
		}
	}
	t.Fatal("no ScaleShift layer found")
	return nil
}

// Property: compiled execution is deterministic.
func TestRunDeterministic(t *testing.T) {
	m, ds := trainedTiny(t, 2, 33)
	p, err := Compile(m, false)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := ds.TestSample(0)
	a, err := p.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(a, b) {
		t.Fatal("nondeterministic execution")
	}
}

// Property: random inputs never crash and always yield Classes logits.
func TestRunRandomInputs(t *testing.T) {
	m, _ := trainedTiny(t, 2, 55)
	p, err := Compile(m, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		x := tensor.New(3, 8, 8)
		for j := range x.Data() {
			x.Data()[j] = rng.Float32()*20 - 10
		}
		out, err := p.Run(x)
		if err != nil {
			t.Fatal(err)
		}
		if out.Len() != 4 {
			t.Fatalf("logits = %d", out.Len())
		}
	}
}
