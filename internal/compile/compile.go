// Package compile lowers a trained quantized model to a functional
// dataflow program — the software twin of FINN's "CNN Compilation & HLS
// Synthesis" step followed by functional (Verilator-style) simulation.
//
// The lowering mirrors what FINN's streamlining does in hardware:
//
//   - each convolution becomes an SWU stage (window generation) feeding an
//     MVTU stage whose weights are the layer's quantized values;
//   - the trailing ScaleShift (folded batch-norm) and QuantAct layers are
//     absorbed into per-channel *threshold ladders* applied directly to the
//     MVTU accumulators — the activation code equals the number of
//     thresholds the accumulator crosses, exactly FINN's
//     Matrix-Vector-Threshold semantics;
//   - max-pooling operates on activation codes (monotone, so pooling codes
//     equals pooling values);
//   - the classifier head stays affine and yields logits.
//
// Programs can be built for the model's own channel counts (a
// Fixed-Pruning accelerator) or for worst-case channel counts with the
// actual model's channels configured at run time (a Flexible-Pruning
// accelerator): weights of absent channels are zero-padded and the
// execution loops are guarded on the runtime channel count, reproducing
// the paper's Fig. 3 template semantics. The test suite verifies both
// modes compute exactly what the nn engine computes.
package compile

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Thresholds is a per-channel activation ladder on the accumulator scale.
// The activation code of accumulator a is the number of entries in Asc
// that a strictly exceeds when Up is true; when Up is false (negative
// batch-norm gain) the comparison direction flips: the code is the number
// of entries a falls strictly below, counted from the top.
type Thresholds struct {
	Asc []float64
	Up  bool
}

// Code returns the activation code for accumulator value a.
func (t Thresholds) Code(a float64) int {
	n := 0
	if t.Up {
		for _, th := range t.Asc {
			if a > th {
				n++
			}
		}
		return n
	}
	for _, th := range t.Asc {
		if a < th {
			n++
		}
	}
	return n
}

// Stage kinds.
type stageKind int

const (
	stageConv stageKind = iota
	stagePool
	stageDense
	stageHead
)

// stage is one compiled pipeline step.
type stage struct {
	kind stageKind
	name string

	// Geometry at worst case (synthesis) and currently configured.
	geom    tensor.ConvGeom // conv/pool window over worst-case channels
	synInC  int
	synOutC int
	curInC  int
	curOutC int

	// Conv/dense parameters, worst-case sized and zero-padded: weights
	// indexed [out][in*k²] (conv) or [out][in] (dense).
	weights [][]float64
	bias    []float64

	// Per-output-channel threshold ladders (nil for head/pool).
	thresholds []Thresholds
	// actStep converts activation codes back to the value grid the next
	// stage's weights expect.
	actStep float64

	// footprint multiplier for dense stages fed by conv channels.
	inFoot int
}

// Program is a compiled functional dataflow.
type Program struct {
	Name    string
	InC     int
	InH     int
	InW     int
	Classes int
	// Flexible programs are sized to worst-case channels and accept
	// SetChannels.
	Flexible      bool
	WorstChannels []int
	CurChannels   []int

	stages []*stage
}

// Compile lowers a model. When flexible is true the program is sized to
// the model's BaseChannels (worst case) with the current weights
// zero-padded into the worst-case arrays; otherwise it is sized to the
// model's own channels.
func Compile(m *model.Model, flexible bool) (*Program, error) {
	if m == nil || m.Net == nil {
		return nil, fmt.Errorf("compile: nil model")
	}
	cur := m.ConvChannels()
	worst := cur
	if flexible {
		worst = m.BaseChannels
		if len(worst) != len(cur) {
			return nil, fmt.Errorf("compile: %d base channels for %d convolutions", len(worst), len(cur))
		}
		for i := range cur {
			if cur[i] > worst[i] {
				return nil, fmt.Errorf("compile: conv %d channels %d exceed worst case %d", i, cur[i], worst[i])
			}
		}
	}
	p := &Program{
		Name:          m.Key(),
		InC:           m.InC,
		InH:           m.InH,
		InW:           m.InW,
		Classes:       m.Classes,
		Flexible:      flexible,
		WorstChannels: append([]int(nil), worst...),
		CurChannels:   append([]int(nil), cur...),
	}

	layers := m.Net.Layers
	shapes, err := nn.OutputShapeAfter(m.Net, m.InC, m.InH, m.InW)
	if err != nil {
		return nil, err
	}
	convIdx := -1
	prevConv := -1
	for li := 0; li < len(layers); li++ {
		switch l := layers[li].Layer.(type) {
		case *nn.Conv2D:
			convIdx++
			st, consumed, err := compileConvBlock(l, layers, li, convIdx, prevConv, worst, flexible)
			if err != nil {
				return nil, err
			}
			p.stages = append(p.stages, st)
			li += consumed
			prevConv = convIdx
		case *nn.MaxPool2D:
			synC := l.Geom.InC
			if flexible && prevConv >= 0 {
				synC = worst[prevConv]
			}
			g := l.Geom
			g.InC = synC
			p.stages = append(p.stages, &stage{
				kind: stagePool, name: fmt.Sprintf("pool@%d", li),
				geom:   g,
				synInC: synC, synOutC: synC,
				curInC: l.Geom.InC, curOutC: l.Geom.InC,
			})
		case *nn.Dense:
			st, consumed, err := compileDenseBlock(l, layers, li, prevConv, worst, flexible, shapes)
			if err != nil {
				return nil, err
			}
			p.stages = append(p.stages, st)
			li += consumed
			prevConv = -1
		case *nn.Flatten:
			// Stream reinterpretation only.
		case *nn.ScaleShift, *nn.QuantAct, *nn.ReLU:
			return nil, fmt.Errorf("compile: dangling %s not absorbed into a compute stage", layers[li].Layer.Name())
		default:
			return nil, fmt.Errorf("compile: unsupported layer %s", layers[li].Layer.Name())
		}
	}
	return p, nil
}

// absorbActivation scans forward from layer index li+1 for the
// ScaleShift+QuantAct pair that FINN folds into the MVTU, returning the
// ladder builder inputs and how many layers were consumed.
func absorbActivation(layers []*nn.NamedLayer, li int) (ss *nn.ScaleShift, qa *nn.QuantAct, consumed int, err error) {
	j := li + 1
	if j < len(layers) {
		if s, ok := layers[j].Layer.(*nn.ScaleShift); ok {
			ss = s
			j++
		}
	}
	if j < len(layers) {
		if q, ok := layers[j].Layer.(*nn.QuantAct); ok {
			qa = q
			j++
		}
	}
	if qa == nil {
		return nil, nil, 0, fmt.Errorf("compile: compute layer %q has no quantized activation to absorb", layers[li].Layer.Name())
	}
	return ss, qa, j - li - 1, nil
}

// buildLadders converts γ·y+β followed by an activation quantizer into
// per-channel accumulator-scale threshold ladders.
func buildLadders(ss *nn.ScaleShift, qa *nn.QuantAct, outC, synOutC int) ([]Thresholds, float64) {
	base := qa.Q.Thresholds()
	ladders := make([]Thresholds, synOutC)
	for c := 0; c < synOutC; c++ {
		gamma, beta := 1.0, 0.0
		if ss != nil && c < outC {
			gamma = float64(ss.Gamma.Value.At(c))
			beta = float64(ss.Beta.Value.At(c))
		}
		t := Thresholds{Asc: make([]float64, len(base)), Up: true}
		switch {
		case gamma > 0:
			for k, th := range base {
				t.Asc[k] = (float64(th) - beta) / gamma
			}
		case gamma < 0:
			// z = γ·a + β crosses th downward: a < (th−β)/γ.
			t.Up = false
			for k, th := range base {
				// Descending in th for γ<0; store ascending for Code.
				t.Asc[len(base)-1-k] = (float64(th) - beta) / gamma
			}
		default:
			// γ == 0: constant pre-activation β; code is fixed.
			fixed := 0
			for _, th := range base {
				if beta > float64(th) {
					fixed++
				}
			}
			// Encode as a ladder that always yields `fixed`.
			t.Asc = make([]float64, fixed)
			for k := range t.Asc {
				t.Asc[k] = math.Inf(-1)
			}
		}
		ladders[c] = t
	}
	return ladders, float64(qa.Q.Step())
}

// compileConvBlock lowers conv (+ScaleShift+QuantAct) into one MVTU stage.
func compileConvBlock(l *nn.Conv2D, layers []*nn.NamedLayer, li, convIdx, prevConv int, worst []int, flexible bool) (*stage, int, error) {
	ss, qa, consumed, err := absorbActivation(layers, li)
	if err != nil {
		return nil, 0, err
	}
	synIn := l.Geom.InC
	if flexible && prevConv >= 0 {
		synIn = worst[prevConv]
	}
	synOut := l.OutC
	if flexible {
		synOut = worst[convIdx]
	}
	k2 := l.Geom.KH * l.Geom.KW
	// Weights exactly as the forward pass computes them (including
	// per-channel quantization scales when configured).
	q, err := l.EffectiveWeights()
	if err != nil {
		return nil, 0, err
	}
	// Zero-padded worst-case weight array, laid out [out][in*k²] with the
	// *worst-case* input stride so runtime channel guards skip pad lanes.
	weights := make([][]float64, synOut)
	for o := range weights {
		weights[o] = make([]float64, synIn*k2)
	}
	for o := 0; o < l.OutC; o++ {
		for ci := 0; ci < l.Geom.InC; ci++ {
			for kk := 0; kk < k2; kk++ {
				weights[o][ci*k2+kk] = float64(q.At(o, ci*k2+kk))
			}
		}
	}
	var bias []float64
	if l.Bias != nil {
		bias = make([]float64, synOut)
		for o := 0; o < l.OutC; o++ {
			bias[o] = float64(l.Bias.Value.At(o))
		}
	}
	ladders, step := buildLadders(ss, qa, l.OutC, synOut)
	g := l.Geom
	g.InC = synIn
	return &stage{
		kind: stageConv, name: "mvtu:" + l.ID,
		geom:   g,
		synInC: synIn, synOutC: synOut,
		curInC: l.Geom.InC, curOutC: l.OutC,
		weights: weights, bias: bias,
		thresholds: ladders, actStep: step,
	}, consumed, nil
}

// compileDenseBlock lowers dense (+ScaleShift+QuantAct) or the bare head.
func compileDenseBlock(l *nn.Dense, layers []*nn.NamedLayer, li, prevConv int, worst []int, flexible bool, shapes [][]int) (*stage, int, error) {
	foot := 1
	if prevConv >= 0 {
		// Spatial footprint of the stream entering this dense layer: the
		// last rank-3 shape upstream.
		for lj := li - 1; lj >= 0; lj-- {
			if len(shapes[lj]) == 3 {
				foot = shapes[lj][1] * shapes[lj][2]
				break
			}
		}
	}
	synIn := l.In
	curIn := l.In
	if flexible && prevConv >= 0 {
		synIn = worst[prevConv] * foot
	}
	// Head (no trailing activation) vs hidden dense.
	var ss *nn.ScaleShift
	var qa *nn.QuantAct
	consumed := 0
	kind := stageHead
	if li+1 < len(layers) {
		if s, q, c, err := absorbActivation(layers, li); err == nil {
			ss, qa, consumed = s, q, c
			kind = stageDense
		}
	}
	q, err := l.EffectiveWeights()
	if err != nil {
		return nil, 0, err
	}
	weights := make([][]float64, l.Out)
	for o := range weights {
		weights[o] = make([]float64, synIn)
	}
	// Pad per channel group: input element ci*foot+f of the current model
	// maps to the same channel index in the worst-case layout.
	for o := 0; o < l.Out; o++ {
		for i := 0; i < l.In; i++ {
			weights[o][i] = float64(q.At(o, i))
		}
	}
	var bias []float64
	if l.Bias != nil {
		bias = make([]float64, l.Out)
		for o := 0; o < l.Out; o++ {
			bias[o] = float64(l.Bias.Value.At(o))
		}
	}
	st := &stage{
		kind: kind, name: "fc:" + l.ID,
		synInC: synIn, synOutC: l.Out,
		curInC: curIn, curOutC: l.Out,
		weights: weights, bias: bias,
		inFoot: foot,
	}
	if kind == stageDense {
		st.thresholds, st.actStep = buildLadders(ss, qa, l.Out, l.Out)
	}
	return st, consumed, nil
}
