package compile

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/tensor"
)

// Run executes the program on one CHW input frame and returns the logits.
// All stage loops are guarded on the *current* channel configuration, so a
// worst-case-synthesized (Flexible) program computes exactly what the
// currently loaded pruned model computes — the functional property behind
// the paper's Fig. 3 templates.
func (p *Program) Run(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Rank() != 3 || x.Dim(0) != p.InC || x.Dim(1) != p.InH || x.Dim(2) != p.InW {
		return nil, fmt.Errorf("compile: input %v does not match %dx%dx%d", x.Shape(), p.InC, p.InH, p.InW)
	}
	cur := make([]float64, x.Len())
	for i, v := range x.Data() {
		cur[i] = float64(v)
	}
	curC, curH, curW := p.InC, p.InH, p.InW

	for _, st := range p.stages {
		switch st.kind {
		case stageConv:
			out, oh, ow, err := st.runConv(cur, curC, curH, curW)
			if err != nil {
				return nil, err
			}
			cur, curC, curH, curW = out, st.curOutC, oh, ow
		case stagePool:
			out, oh, ow, err := st.runPool(cur, curC, curH, curW)
			if err != nil {
				return nil, err
			}
			cur, curH, curW = out, oh, ow
		case stageDense, stageHead:
			out, err := st.runDense(cur)
			if err != nil {
				return nil, err
			}
			cur, curC, curH, curW = out, st.curOutC, 1, 1
		}
	}
	logits := tensor.New(len(cur))
	for i, v := range cur {
		logits.Data()[i] = float32(v)
	}
	return logits, nil
}

// runConv is the SWU+MVTU pair: window generation followed by guarded
// dot products and threshold application.
func (st *stage) runConv(in []float64, inC, inH, inW int) ([]float64, int, int, error) {
	if inC != st.curInC {
		return nil, 0, 0, fmt.Errorf("compile: stage %s fed %d channels, configured for %d", st.name, inC, st.curInC)
	}
	g := st.geom
	if inH != g.InH || inW != g.InW {
		return nil, 0, 0, fmt.Errorf("compile: stage %s fed %dx%d, wants %dx%d", st.name, inH, inW, g.InH, g.InW)
	}
	oh, ow := g.OutH(), g.OutW()
	k2 := g.KH * g.KW
	out := make([]float64, st.curOutC*oh*ow)
	window := make([]float64, st.curInC*k2)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			// SWU: gather the receptive field (zero padding outside).
			for ci := 0; ci < st.curInC; ci++ { // runtime channel guard
				for kh := 0; kh < g.KH; kh++ {
					iy := oy*g.StrideH - g.PadH + kh
					for kw := 0; kw < g.KW; kw++ {
						ix := ox*g.StrideW - g.PadW + kw
						v := 0.0
						if iy >= 0 && iy < inH && ix >= 0 && ix < inW {
							v = in[(ci*inH+iy)*inW+ix]
						}
						window[ci*k2+kh*g.KW+kw] = v
					}
				}
			}
			// MVTU: guarded accumulate + per-channel threshold ladder.
			for o := 0; o < st.curOutC; o++ { // runtime channel guard
				acc := 0.0
				w := st.weights[o]
				for i := 0; i < st.curInC*k2; i++ {
					acc += w[i] * window[i]
				}
				if st.bias != nil {
					acc += st.bias[o]
				}
				code := st.thresholds[o].Code(acc)
				out[(o*oh+oy)*ow+ox] = float64(code) * st.actStep
			}
		}
	}
	return out, oh, ow, nil
}

// runPool is the channel-unrolled MaxPool template.
func (st *stage) runPool(in []float64, inC, inH, inW int) ([]float64, int, int, error) {
	if inC != st.curInC {
		return nil, 0, 0, fmt.Errorf("compile: stage %s fed %d channels, configured for %d", st.name, inC, st.curInC)
	}
	g := st.geom
	oh, ow := g.OutH(), g.OutW()
	out := make([]float64, st.curInC*oh*ow)
	for c := 0; c < st.curInC; c++ { // runtime channel guard on the unroll
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := 0.0
				first := true
				for kh := 0; kh < g.KH; kh++ {
					iy := oy*g.StrideH - g.PadH + kh
					if iy < 0 || iy >= inH {
						continue
					}
					for kw := 0; kw < g.KW; kw++ {
						ix := ox*g.StrideW - g.PadW + kw
						if ix < 0 || ix >= inW {
							continue
						}
						v := in[(c*inH+iy)*inW+ix]
						if first || v > best {
							best, first = v, false
						}
					}
				}
				out[(c*oh+oy)*ow+ox] = best
			}
		}
	}
	return out, oh, ow, nil
}

// runDense is the dense MVTU (hidden layers apply threshold ladders; the
// head emits raw logits).
func (st *stage) runDense(in []float64) ([]float64, error) {
	if len(in) != st.curInC {
		return nil, fmt.Errorf("compile: stage %s fed %d values, configured for %d", st.name, len(in), st.curInC)
	}
	out := make([]float64, st.curOutC)
	for o := 0; o < st.curOutC; o++ {
		acc := 0.0
		w := st.weights[o]
		for i := 0; i < st.curInC; i++ { // runtime guard over channel groups
			acc += w[i] * in[i]
		}
		if st.bias != nil {
			acc += st.bias[o]
		}
		if st.kind == stageHead {
			out[o] = acc
		} else {
			out[o] = float64(st.thresholds[o].Code(acc)) * st.actStep
		}
	}
	return out, nil
}

// LoadModel reloads a flexible program with another pruned version of the
// same initial model: weights and threshold ladders are re-padded into the
// worst-case arrays and the runtime channel configuration is updated —
// the fast model switch (channel-port write + weight reload) of the
// paper's Flexible accelerator.
func (p *Program) LoadModel(m *model.Model) error {
	if !p.Flexible {
		return fmt.Errorf("compile: %s is a fixed program; switching needs reconfiguration", p.Name)
	}
	np, err := Compile(m, true)
	if err != nil {
		return err
	}
	if len(np.WorstChannels) != len(p.WorstChannels) {
		return fmt.Errorf("compile: model has %d convolutions, program has %d", len(np.WorstChannels), len(p.WorstChannels))
	}
	for i := range np.WorstChannels {
		if np.WorstChannels[i] != p.WorstChannels[i] {
			return fmt.Errorf("compile: conv %d worst case %d does not match program %d — not a version of the same initial model",
				i, np.WorstChannels[i], p.WorstChannels[i])
		}
	}
	if len(np.stages) != len(p.stages) {
		return fmt.Errorf("compile: model lowers to %d stages, program has %d", len(np.stages), len(p.stages))
	}
	p.stages = np.stages
	p.CurChannels = np.CurChannels
	return nil
}
