// Package synth models the "CNN Compilation & HLS Synthesis" stage of
// AdaFlow's Library Generator: it turns a finn.Dataflow into an
// Accelerator with FPGA resource usage (LUT/FF/BRAM/DSP), a power model,
// and an FPGA reconfiguration-time model.
//
// No Vivado exists here (see DESIGN.md, substitutions); instead each
// module's resources follow FINN's structural cost drivers — the PE×SIMD
// compute array, weight storage split across LUTRAM and BRAM, stream
// control — with coefficients calibrated so the paper-scale CNV lands on
// the paper's reported *ratios*:
//
//   - Flexible-Pruning ≈ 1.92× the LUTs of the original FINN accelerator,
//     with no BRAM increase (weights and feature maps only shrink);
//   - Fixed-Pruning LUT reductions from ≈1.5 % (5 % pruning) to ≈46 %
//     (85 % pruning), driven by the quadratic weight shrinkage;
//   - total power ≈1.07 W for the busy CNVW2A2 baseline at 100 MHz with
//     pruned fixed accelerators slightly below 1 W at partial load;
//   - a full-device reconfiguration of ≈145 ms on the ZCU104 (the paper's
//     Scenario-1 run reports five reconfigurations ≈ 725 ms).
package synth

import (
	"fmt"
	"time"

	"repro/internal/finn"
)

// Resources is an FPGA utilization vector.
type Resources struct {
	LUT  int
	FF   int
	BRAM int // BRAM36 blocks
	DSP  int
}

// Add returns the component-wise sum.
func (r Resources) Add(o Resources) Resources {
	return Resources{r.LUT + o.LUT, r.FF + o.FF, r.BRAM + o.BRAM, r.DSP + o.DSP}
}

// Sub returns the component-wise difference (incremental re-synthesis:
// resource counts are integers, so subtract-then-add round-trips exactly).
func (r Resources) Sub(o Resources) Resources {
	return Resources{r.LUT - o.LUT, r.FF - o.FF, r.BRAM - o.BRAM, r.DSP - o.DSP}
}

// Device describes the FPGA fabric budget. ZCU104 carries an XCZU7EV.
type Device struct {
	Name string
	Resources
	// BitstreamBytes is the full configuration bitstream size, which sets
	// the reconfiguration time over the configuration port.
	BitstreamBytes int64
	// ConfigPortBytesPerSec is the PCAP throughput.
	ConfigPortBytesPerSec float64
}

// ZCU104 is the paper's evaluation board.
var ZCU104 = Device{
	Name:                  "ZCU104 (XCZU7EV)",
	Resources:             Resources{LUT: 230400, FF: 460800, BRAM: 312, DSP: 1728},
	BitstreamBytes:        29_000_000,
	ConfigPortBytesPerSec: 200e6,
}

// ReconfigTime returns the time to load a full bitstream.
func (d Device) ReconfigTime() time.Duration {
	if d.ConfigPortBytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(d.BitstreamBytes) / d.ConfigPortBytesPerSec * float64(time.Second))
}

// Fits reports whether the utilization fits the device.
func (d Device) Fits(r Resources) bool {
	return r.LUT <= d.LUT && r.FF <= d.FF && r.BRAM <= d.BRAM && r.DSP <= d.DSP
}

// WithPartialReconfiguration returns a copy of the device whose
// model-switch bitstreams cover only the given fraction of the fabric
// (dynamic partial reconfiguration, as the Seyoum et al. work the paper
// cites uses); the reconfiguration time scales with the bitstream size.
// The reconfigurable region must still host the accelerators, so the
// resource budget is scaled too.
func (d Device) WithPartialReconfiguration(fraction float64) (Device, error) {
	if fraction <= 0 || fraction > 1 {
		return Device{}, fmt.Errorf("synth: partial-reconfiguration fraction %v out of (0,1]", fraction)
	}
	p := d
	p.Name = fmt.Sprintf("%s (PR %.0f%%)", d.Name, fraction*100)
	p.BitstreamBytes = int64(float64(d.BitstreamBytes) * fraction)
	p.LUT = int(float64(d.LUT) * fraction)
	p.FF = int(float64(d.FF) * fraction)
	p.BRAM = int(float64(d.BRAM) * fraction)
	p.DSP = int(float64(d.DSP) * fraction)
	return p, nil
}

// Calibration constants. Each is a structural cost driver with a
// coefficient fitted to the paper's reported ratios (see package comment).
const (
	lutPerComputeLane = 2.2    // LUTs per PE·SIMD lane per (wbits·abits+2)
	lutPerWeightBit   = 0.0065 // LUTRAM share of weight storage
	lutCtrlPerModule  = 250.0  // counters, FSM, AXI-stream handshake
	lutSWUBase        = 200.0
	lutSWUPerLane     = 2.0 // per SIMD·abit
	lutPoolBase       = 50.0
	lutPoolPerChan    = 3.0 // channel-unrolled comparators per abit
	lutFIFO           = 50.0

	ffPerLUT = 1.15 // pipeline registers track LUT usage

	bramBitsPerBlock = 36864.0
	fifoLUTRAMBits   = 18432.0 // FIFOs below this stay in LUTRAM

	dspBase = 12 // scaling/misc; quantized MACs use LUTs, not DSPs

	// FlexibleLUTFactor is the measured LUT overhead of the
	// runtime-controllable templates (paper §VI-A: 1.92×).
	FlexibleLUTFactor = 1.92
	flexibleFFFactor  = 1.55

	// Power model: P = staticW + clockWPerLUT·LUT + E_inf·processedFPS.
	staticW      = 0.30
	clockWPerLUT = 6.0e-6
	// Per-inference dynamic energy: E_inf = eFrameBase + eMAC·MACs·bitFactor.
	eFrameBase = 1.0e-4 // J: streaming, thresholds, I/O
	eMAC       = 1.73e-11
	// Flexible templates toggle extra guard logic per frame.
	flexEnergyFactor = 1.10
)

// Accelerator is a synthesized bitstream artifact: a dataflow plus its
// resource footprint and power/reconfiguration models.
type Accelerator struct {
	Dataflow *finn.Dataflow
	Device   Device
	Res      Resources
	// PerModule maps module names to their resource share (diagnostics
	// and the Fig. 5(a) breakdown).
	PerModule map[string]Resources
}

// Synthesize computes the resource footprint of a dataflow on a device.
func Synthesize(df *finn.Dataflow, dev Device) (*Accelerator, error) {
	if df == nil || len(df.Modules) == 0 {
		return nil, fmt.Errorf("synth: empty dataflow")
	}
	acc := &Accelerator{Dataflow: df, Device: dev, PerModule: make(map[string]Resources, len(df.Modules))}
	for _, m := range df.Modules {
		r := ModuleResources(m)
		acc.PerModule[m.Name] = r
		acc.Res = acc.Res.Add(r)
	}
	acc.Res = acc.Res.Add(Overhead())
	if !dev.Fits(acc.Res) {
		return nil, fmt.Errorf("synth: %s does not fit %s: need %+v, have %+v",
			df.Name, dev.Name, acc.Res, dev.Resources)
	}
	return acc, nil
}

// Overhead is the per-accelerator resource cost added on top of the sum of
// module resources (scaling/misc DSP logic). Exported so incremental
// re-synthesis (internal/explore) reconstructs Synthesize's total exactly:
// Res = Σ ModuleResources(module) + Overhead().
func Overhead() Resources { return Resources{DSP: dspBase} }

// ModuleResources models one module's fabric cost at synthesis-time
// geometry (worst case for flexible templates). It is a pure function of
// the module's fields, which is what makes incremental re-synthesis exact:
// when a folding step changes one module, subtracting its old cost and
// adding the new one reproduces a full Synthesize sum bit for bit.
func ModuleResources(m *finn.Module) Resources {
	var lut, ff float64
	var bram int
	switch m.Kind {
	case finn.KindSWU:
		lut = lutSWUBase + lutSWUPerLane*float64(m.SIMD*m.ABits)
	case finn.KindMVTUConv, finn.KindMVTUDense:
		lut = lutPerComputeLane*float64(m.PE*m.SIMD)*float64(m.WBits*m.ABits+2) + lutCtrlPerModule
		weightBits := float64(m.SynWeights()) * float64(m.WBits)
		lut += lutPerWeightBit * weightBits
		// Weight memory: distributed across PE-private BRAM stacks.
		perPE := weightBits / float64(m.PE)
		bram = m.PE * int(ceilDiv64(int64(perPE), int64(bramBitsPerBlock)))
	case finn.KindMaxPool:
		lut = lutPoolBase + lutPoolPerChan*float64(m.SynInC*m.ABits)
	case finn.KindFIFO:
		lut = lutFIFO
		// Depth (stored in PE) × stream width decides BRAM vs LUTRAM.
		bits := float64(m.PE) * float64(m.SynOutC*m.ABits)
		if bits > fifoLUTRAMBits {
			bram = int(ceilDiv64(int64(bits), int64(bramBitsPerBlock)))
		} else {
			lut += bits / 64
		}
	}
	if m.Flexible && m.Kind != finn.KindFIFO {
		// Runtime-controllable templates replicate guard logic across the
		// unrolled structure (FIFOs are already worst-case sized and gain
		// nothing).
		ff = lut * flexibleFFFactor * ffPerLUT
		lut *= FlexibleLUTFactor
	} else {
		ff = lut * ffPerLUT
	}
	return Resources{LUT: int(lut), FF: int(ff), BRAM: bram}
}

func ceilDiv64(a, b int64) int64 {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// bitFactor scales dynamic MAC energy with operand precision.
func bitFactor(wbits, abits int) float64 {
	if wbits <= 0 {
		wbits = 32
	}
	if abits <= 0 {
		abits = 32
	}
	return float64(wbits+abits) / 4
}

// EnergyPerInference returns the dynamic energy of one inference at the
// accelerator's current channel configuration, in joules.
func (a *Accelerator) EnergyPerInference() float64 {
	var bf, macs float64
	for _, m := range a.Dataflow.Modules {
		macs += float64(m.MACs())
		if bf == 0 && (m.Kind == finn.KindMVTUConv || m.Kind == finn.KindMVTUDense) {
			bf = bitFactor(m.WBits, m.ABits)
		}
	}
	e := eFrameBase + eMAC*macs*bf
	if a.Dataflow.Flexible {
		e *= flexEnergyFactor
	}
	return e
}

// IdlePower returns static plus clock-tree power in watts.
func (a *Accelerator) IdlePower() float64 {
	return staticW + clockWPerLUT*float64(a.Res.LUT)
}

// PowerAt returns total power in watts while processing the given frame
// rate. Rates above the accelerator's capacity are clamped (the pipeline
// cannot switch faster than full utilization).
func (a *Accelerator) PowerAt(processedFPS float64) float64 {
	if processedFPS < 0 {
		processedFPS = 0
	}
	if cap := a.Dataflow.FPS(); processedFPS > cap {
		processedFPS = cap
	}
	return a.IdlePower() + a.EnergyPerInference()*processedFPS
}

// TotalEnergyPerInference returns total (static + dynamic) energy per
// inference at full utilization — the Fig. 5(b)/(c) metric.
func (a *Accelerator) TotalEnergyPerInference() float64 {
	fps := a.Dataflow.FPS()
	if fps <= 0 {
		return 0
	}
	return a.PowerAt(fps) / fps
}

// ReconfigTime returns the FPGA reconfiguration time needed to load this
// accelerator (full bitstream over the configuration port).
func (a *Accelerator) ReconfigTime() time.Duration {
	return a.Device.ReconfigTime()
}

// Utilization returns each resource as a fraction of the device.
func (a *Accelerator) Utilization() map[string]float64 {
	return map[string]float64{
		"LUT":  float64(a.Res.LUT) / float64(a.Device.LUT),
		"FF":   float64(a.Res.FF) / float64(a.Device.FF),
		"BRAM": float64(a.Res.BRAM) / float64(a.Device.BRAM),
		"DSP":  float64(a.Res.DSP) / float64(a.Device.DSP),
	}
}
