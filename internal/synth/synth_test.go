package synth

import (
	"testing"

	"repro/internal/finn"
	"repro/internal/model"
	"repro/internal/prune"
)

func cnv(t *testing.T) *model.Model {
	t.Helper()
	m, err := model.CNVW2A2("cifar10", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func synthFor(t *testing.T, m *model.Model, flexible bool) *Accelerator {
	t.Helper()
	df, err := finn.Map(m, finn.DefaultFolding(m), finn.Options{Flexible: flexible})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Synthesize(df, ZCU104)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

func prunedCNV(t *testing.T, m *model.Model, rate float64) *model.Model {
	t.Helper()
	fold := finn.DefaultFolding(m)
	gs, err := fold.ChannelGranularity(m)
	if err != nil {
		t.Fatal(err)
	}
	pr, _, err := prune.Shrink(m, rate, gs)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestReconfigTimeNearPaper(t *testing.T) {
	rt := ZCU104.ReconfigTime().Seconds()
	// Paper: five reconfigurations ≈ 725 ms → ≈145 ms each.
	if rt < 0.10 || rt > 0.20 {
		t.Fatalf("reconfig time %.3fs, want ≈0.145s", rt)
	}
}

// TestFlexibleLUTRatio pins the paper's headline resource result:
// Flexible-Pruning ≈ 1.92× the LUTs of original FINN.
func TestFlexibleLUTRatio(t *testing.T) {
	m := cnv(t)
	fixed := synthFor(t, m, false)
	flex := synthFor(t, m, true)
	ratio := float64(flex.Res.LUT) / float64(fixed.Res.LUT)
	if ratio < 1.75 || ratio > 2.05 {
		t.Fatalf("flexible LUT ratio = %.3f, want ≈1.92", ratio)
	}
}

// TestFlexibleNoBRAMIncrease pins the paper's claim that Flexible-Pruning
// shows no BRAM increase over FINN.
func TestFlexibleNoBRAMIncrease(t *testing.T) {
	m := cnv(t)
	fixed := synthFor(t, m, false)
	flex := synthFor(t, m, true)
	if flex.Res.BRAM > fixed.Res.BRAM {
		t.Fatalf("flexible BRAM %d > FINN %d", flex.Res.BRAM, fixed.Res.BRAM)
	}
}

// TestFixedPruningLUTReductions pins the paper's range: −1.5 % at 5 %
// pruning up to −46.2 % at 85 % pruning (we allow generous bands; the
// drivers are structural, not fitted per-point).
func TestFixedPruningLUTReductions(t *testing.T) {
	m := cnv(t)
	base := synthFor(t, m, false)
	small := synthFor(t, prunedCNV(t, m, 0.05), false)
	large := synthFor(t, prunedCNV(t, m, 0.85), false)
	redSmall := 1 - float64(small.Res.LUT)/float64(base.Res.LUT)
	redLarge := 1 - float64(large.Res.LUT)/float64(base.Res.LUT)
	if redSmall < 0.0 || redSmall > 0.06 {
		t.Fatalf("5%% prune LUT reduction = %.3f, want ≈0.015", redSmall)
	}
	if redLarge < 0.35 || redLarge > 0.55 {
		t.Fatalf("85%% prune LUT reduction = %.3f, want ≈0.46", redLarge)
	}
	if redLarge <= redSmall {
		t.Fatal("LUT reduction not monotone in pruning rate")
	}
}

// TestBaselinePowerNearPaper pins the busy CNVW2A2 baseline near the
// paper's 1.07 W.
func TestBaselinePowerNearPaper(t *testing.T) {
	m := cnv(t)
	acc := synthFor(t, m, false)
	p := acc.PowerAt(acc.Dataflow.FPS())
	if p < 0.95 || p > 1.20 {
		t.Fatalf("busy baseline power = %.3f W, want ≈1.07", p)
	}
}

// TestEnergyReductionAt25Percent pins Fig. 5(b): at 25 % pruning the Fixed
// accelerator reduces energy/inference ≈1.64×, the Flexible one ≈1.38×,
// relative to original FINN.
func TestEnergyReductionAt25Percent(t *testing.T) {
	m := cnv(t)
	base := synthFor(t, m, false)
	pr := prunedCNV(t, m, 0.25)

	fixed := synthFor(t, pr, false)

	flexDF, err := finn.Map(m, finn.DefaultFolding(m), finn.Options{Flexible: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := flexDF.SetChannels(pr.ConvChannels()); err != nil {
		t.Fatal(err)
	}
	flex, err := Synthesize(flexDF, ZCU104)
	if err != nil {
		t.Fatal(err)
	}

	e0 := base.TotalEnergyPerInference()
	redFixed := e0 / fixed.TotalEnergyPerInference()
	redFlex := e0 / flex.TotalEnergyPerInference()
	if redFixed < 1.4 || redFixed > 1.9 {
		t.Fatalf("fixed 25%% energy reduction = %.2f, want ≈1.64", redFixed)
	}
	if redFlex < 1.2 || redFlex > 1.6 {
		t.Fatalf("flex 25%% energy reduction = %.2f, want ≈1.38", redFlex)
	}
	if redFixed <= redFlex {
		t.Fatal("fixed must be more energy-efficient than flexible")
	}
}

func TestPowerMonotoneInLoad(t *testing.T) {
	m := cnv(t)
	acc := synthFor(t, m, false)
	if acc.PowerAt(100) >= acc.PowerAt(400) {
		t.Fatal("power not increasing with load")
	}
	if acc.PowerAt(-5) != acc.IdlePower() {
		t.Fatal("negative load not clamped")
	}
	// Above capacity clamps.
	cap := acc.Dataflow.FPS()
	if acc.PowerAt(cap*10) != acc.PowerAt(cap) {
		t.Fatal("load above capacity not clamped")
	}
}

func TestW1A2CheaperThanW2A2(t *testing.T) {
	m2 := cnv(t)
	m1, err := model.CNVW1A2("cifar10", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	a2 := synthFor(t, m2, false)
	a1 := synthFor(t, m1, false)
	if a1.PowerAt(a1.Dataflow.FPS()) >= a2.PowerAt(a2.Dataflow.FPS()) {
		t.Fatal("W1A2 not cheaper than W2A2")
	}
	if a1.Res.LUT >= a2.Res.LUT {
		t.Fatal("W1A2 should use fewer LUTs")
	}
}

func TestFitsDevice(t *testing.T) {
	m := cnv(t)
	flex := synthFor(t, m, true)
	if !ZCU104.Fits(flex.Res) {
		t.Fatalf("flexible CNV does not fit ZCU104: %+v", flex.Res)
	}
	small := Device{Name: "small", Resources: Resources{LUT: 100, FF: 100, BRAM: 1, DSP: 1}}
	df, err := finn.Map(m, finn.DefaultFolding(m), finn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Synthesize(df, small); err == nil {
		t.Fatal("oversized design accepted on tiny device")
	}
}

func TestSynthesizeValidation(t *testing.T) {
	if _, err := Synthesize(nil, ZCU104); err == nil {
		t.Fatal("nil dataflow accepted")
	}
}

func TestPartialReconfiguration(t *testing.T) {
	pr, err := ZCU104.WithPartialReconfiguration(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if pr.ReconfigTime() >= ZCU104.ReconfigTime() {
		t.Fatal("partial reconfiguration not faster")
	}
	if got, want := pr.ReconfigTime().Seconds(), ZCU104.ReconfigTime().Seconds()/2; got < want*0.99 || got > want*1.01 {
		t.Fatalf("PR time %v, want half of %v", pr.ReconfigTime(), ZCU104.ReconfigTime())
	}
	if pr.LUT != ZCU104.LUT/2 {
		t.Fatalf("PR region LUTs %d", pr.LUT)
	}
	for _, bad := range []float64{0, -0.5, 1.5} {
		if _, err := ZCU104.WithPartialReconfiguration(bad); err == nil {
			t.Errorf("fraction %v accepted", bad)
		}
	}
	// A half-fabric region still fits the fixed CNV but the flexible one
	// gets tight; synthesizing against the PR region exercises Fits.
	m := cnv(t)
	df, err := finn.Map(m, finn.DefaultFolding(m), finn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Synthesize(df, pr); err != nil {
		t.Fatalf("fixed CNV should fit half the fabric: %v", err)
	}
}

func TestUtilizationFractions(t *testing.T) {
	m := cnv(t)
	acc := synthFor(t, m, false)
	u := acc.Utilization()
	for k, v := range u {
		if v < 0 || v > 1 {
			t.Fatalf("utilization %s = %v out of [0,1]", k, v)
		}
	}
}

// TestBRAMIsLimitingFactor pins the paper's observation that BRAM "is
// often the limiting factor for FPGA-based CNN accelerators — i.e., the
// resource with the highest usage" (§VI-A) — for both FINN and the
// Flexible accelerator.
func TestBRAMIsLimitingFactor(t *testing.T) {
	m := cnv(t)
	for _, flexible := range []bool{false, true} {
		u := synthFor(t, m, flexible).Utilization()
		for k, v := range u {
			if k != "BRAM" && v > u["BRAM"] {
				t.Errorf("flexible=%v: %s utilization %.3f exceeds BRAM %.3f", flexible, k, v, u["BRAM"])
			}
		}
	}
}
