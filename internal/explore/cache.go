package explore

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/finn"
	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/synth"
)

// The greedy searches re-visit the same (model, folding, device) points
// constantly: every TargetFPS call walks up from MinimalFolding, so two
// searches over the same model share almost their whole prefix, and the
// library sweep maps structurally identical pruned models. A package-level
// cache keyed by the full evaluation input short-circuits those repeats.
// Cached values are pure outputs of pure integer/float models, so hits are
// bit-identical to recomputation — determinism does not depend on whether
// or in which order entries were populated.

type evalKey struct {
	model    string // structural signature, see modelSignature
	fold     string
	dev      string // name + budget, see deviceKey
	flexible bool
	clock    float64
}

type evalResult struct {
	FPS        float64
	Res        synth.Resources
	Bottleneck string
}

var (
	cacheMu sync.RWMutex
	cache   = map[evalKey]evalResult{}

	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
)

// cacheMaxEntries bounds memory: one entry is ~200 B, so the cap holds the
// whole design-time pipeline many times over; on overflow the map is
// dropped wholesale (correctness never depends on retention).
const cacheMaxEntries = 1 << 17

func cacheGet(k evalKey) (evalResult, bool) {
	cacheMu.RLock()
	v, ok := cache[k]
	cacheMu.RUnlock()
	if ok {
		cacheHits.Add(1)
	} else {
		cacheMisses.Add(1)
	}
	return v, ok
}

func cachePut(k evalKey, v evalResult) {
	cacheMu.Lock()
	if len(cache) >= cacheMaxEntries {
		cache = make(map[evalKey]evalResult, cacheMaxEntries/4)
	}
	cache[k] = v
	cacheMu.Unlock()
}

// CacheStats returns the evaluation cache's cumulative hit and miss
// counters (process lifetime, reset by ResetCache).
func CacheStats() (hits, misses uint64) {
	return cacheHits.Load(), cacheMisses.Load()
}

// ResetCache empties the evaluation cache and zeroes its counters.
// Benchmarks use it to measure cold-start search cost.
func ResetCache() {
	cacheMu.Lock()
	cache = map[evalKey]evalResult{}
	cacheMu.Unlock()
	cacheHits.Store(0)
	cacheMisses.Store(0)
}

// modelSignature fingerprints everything about a model that the
// Map+Synthesize pipeline reads: per-conv geometry (current channels,
// kernel, stride, pad), worst-case base channels (flexible templates are
// sized to them), dense shapes, and quantization widths. model.Key alone
// is not enough — differently shaped models may share name/dataset/rate.
func modelSignature(m *model.Model) string {
	var b strings.Builder
	b.Grow(160)
	b.WriteString(m.Key())
	b.WriteString("|w")
	b.WriteString(strconv.Itoa(m.WBits))
	b.WriteString("a")
	b.WriteString(strconv.Itoa(m.ABits))
	for _, bc := range m.BaseChannels {
		b.WriteString("|b")
		b.WriteString(strconv.Itoa(bc))
	}
	for _, c := range m.Net.Convs() {
		g := c.Geom
		b.WriteString("|c")
		for _, v := range [...]int{g.InC, g.InH, g.InW, c.OutC, g.KH, g.KW,
			g.StrideH, g.StrideW, g.PadH, g.PadW, quantBits(c.Quant)} {
			b.WriteString(strconv.Itoa(v))
			b.WriteByte(',')
		}
	}
	for _, d := range m.Net.Denses() {
		b.WriteString("|d")
		b.WriteString(strconv.Itoa(d.In))
		b.WriteString(",")
		b.WriteString(strconv.Itoa(d.Out))
		b.WriteString(",")
		b.WriteString(strconv.Itoa(quantBits(d.Quant)))
	}
	return b.String()
}

func quantBits(q *quant.WeightQuantizer) int {
	if q == nil {
		return 0
	}
	return q.Bits
}

// foldKey serializes a folding vector compactly and unambiguously.
func foldKey(f finn.Folding) string {
	var b strings.Builder
	b.Grow(4 * (len(f.ConvPE) + len(f.ConvSIMD) + len(f.DensePE) + len(f.DenseSIMD)))
	for _, s := range [...][]int{f.ConvPE, f.ConvSIMD, f.DensePE, f.DenseSIMD} {
		for _, v := range s {
			b.WriteString(strconv.Itoa(v))
			b.WriteByte(',')
		}
		b.WriteByte('|')
	}
	return b.String()
}

// deviceKey identifies a device by name and budget: two devices sharing a
// name but not a budget (hand-built test fabrics) must not share entries,
// since fit failure is part of the evaluation outcome.
func deviceKey(d synth.Device) string {
	return d.Name + "/" + strconv.Itoa(d.LUT) + "/" + strconv.Itoa(d.FF) +
		"/" + strconv.Itoa(d.BRAM) + "/" + strconv.Itoa(d.DSP)
}
