// Package explore searches the PE/SIMD folding design space of a dataflow
// accelerator — the role of FINN's folding-configuration step. Starting
// from a minimal (fully folded) configuration it greedily unfolds the
// current bottleneck layer, one legal divisor step at a time, until a
// throughput target is met or a resource budget is exhausted. The search
// is exact with respect to the cycle and resource models in internal/finn
// and internal/synth.
package explore

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/finn"
	"repro/internal/model"
	"repro/internal/synth"
)

// Result is one explored design point.
type Result struct {
	Folding    finn.Folding
	FPS        float64
	Res        synth.Resources
	Iterations int
	// Bottleneck names the module limiting throughput at the end.
	Bottleneck string
}

// Options tune the search.
type Options struct {
	// Device defaults to synth.ZCU104.
	Device *synth.Device
	// ClockHz defaults to finn.DefaultClockHz.
	ClockHz float64
	// MaxIterations bounds the greedy loop (default 256).
	MaxIterations int
	// Flexible explores the runtime-controllable variant (worst-case
	// sizing, higher resource cost).
	Flexible bool
}

func (o *Options) defaults() (synth.Device, int) {
	dev := synth.ZCU104
	if o.Device != nil {
		dev = *o.Device
	}
	it := o.MaxIterations
	if it == 0 {
		it = 256
	}
	return dev, it
}

// MinimalFolding returns the fully-folded configuration: PE=1 everywhere
// and the smallest legal SIMD (kernel-column granularity for convs, 1 for
// dense layers).
func MinimalFolding(m *model.Model) finn.Folding {
	convs := m.Net.Convs()
	denses := m.Net.Denses()
	f := finn.Folding{
		ConvPE:    make([]int, len(convs)),
		ConvSIMD:  make([]int, len(convs)),
		DensePE:   make([]int, len(denses)),
		DenseSIMD: make([]int, len(denses)),
	}
	for i := range convs {
		f.ConvPE[i] = 1
		f.ConvSIMD[i] = 1
	}
	for i := range denses {
		f.DensePE[i] = 1
		f.DenseSIMD[i] = 1
	}
	return f
}

// evaluate maps and synthesizes one candidate.
func evaluate(m *model.Model, f finn.Folding, opts Options, dev synth.Device) (*finn.Dataflow, *synth.Accelerator, error) {
	df, err := finn.Map(m, f, finn.Options{Flexible: opts.Flexible, ClockHz: opts.ClockHz})
	if err != nil {
		return nil, nil, err
	}
	acc, err := synth.Synthesize(df, dev)
	if err != nil {
		return nil, nil, err
	}
	return df, acc, nil
}

// bottleneckModule returns the slowest compute module of the dataflow.
func bottleneckModule(df *finn.Dataflow) *finn.Module {
	var worst *finn.Module
	var cycles int64 = -1
	for _, mod := range df.Modules {
		if c := mod.CyclesPerFrame(); c > cycles {
			cycles, worst = c, mod
		}
	}
	return worst
}

// nextDivisor returns the smallest divisor of n strictly greater than cur,
// or 0 when cur is already n.
func nextDivisor(n, cur int) int {
	for d := cur + 1; d <= n; d++ {
		if n%d == 0 {
			return d
		}
	}
	return 0
}

// layerIndex parses the module name produced by finn.Map ("mvtu3", "fc1",
// "swu2") into layer kind and index.
func layerIndex(name string) (conv bool, idx int, ok bool) {
	switch {
	case strings.HasPrefix(name, "mvtu"):
		i, err := strconv.Atoi(name[4:])
		return true, i, err == nil
	case strings.HasPrefix(name, "swu"):
		i, err := strconv.Atoi(name[3:])
		return true, i, err == nil
	case strings.HasPrefix(name, "fc"):
		i, err := strconv.Atoi(name[2:])
		return false, i, err == nil
	default:
		return false, 0, false
	}
}

// unfoldStep returns a copy of f with the bottleneck layer's cheaper axis
// advanced one divisor step, or ok=false when the layer is fully unfolded.
func unfoldStep(m *model.Model, f finn.Folding, bott *finn.Module) (finn.Folding, bool) {
	conv, idx, ok := layerIndex(bott.Name)
	if !ok {
		return f, false
	}
	nf := f.Clone()
	if conv {
		c := m.Net.Convs()[idx]
		k2 := c.Geom.KH * c.Geom.KW
		// Two axes: SIMD over K²·InC and PE over OutC. Advance the one
		// with the smaller relative jump; fall back to the other.
		ns := nextDivisor(k2*c.Geom.InC, f.ConvSIMD[idx])
		np := nextDivisor(c.OutC, f.ConvPE[idx])
		switch {
		case ns == 0 && np == 0:
			return f, false
		case np == 0,
			ns != 0 && float64(ns)/float64(f.ConvSIMD[idx]) <= float64(np)/float64(f.ConvPE[idx]):
			nf.ConvSIMD[idx] = ns
		default:
			nf.ConvPE[idx] = np
		}
		return nf, true
	}
	d := m.Net.Denses()[idx]
	ns := nextDivisor(d.In, f.DenseSIMD[idx])
	np := nextDivisor(d.Out, f.DensePE[idx])
	switch {
	case ns == 0 && np == 0:
		return f, false
	case np == 0,
		ns != 0 && float64(ns)/float64(f.DenseSIMD[idx]) <= float64(np)/float64(f.DensePE[idx]):
		nf.DenseSIMD[idx] = ns
	default:
		nf.DensePE[idx] = np
	}
	return nf, true
}

// TargetFPS unfolds until the dataflow reaches the target throughput (or
// the design no longer fits the device / cannot unfold further, in which
// case the best reached point is returned along with an error).
func TargetFPS(m *model.Model, target float64, opts Options) (*Result, error) {
	if target <= 0 {
		return nil, fmt.Errorf("explore: non-positive FPS target %v", target)
	}
	dev, maxIt := opts.defaults()
	f := MinimalFolding(m)
	df, acc, err := evaluate(m, f, opts, dev)
	if err != nil {
		return nil, err
	}
	res := &Result{Folding: f, FPS: df.FPS(), Res: acc.Res, Bottleneck: bottleneckModule(df).Name}
	for it := 0; it < maxIt && res.FPS < target; it++ {
		nf, ok := unfoldStep(m, res.Folding, bottleneckModule(df))
		if !ok {
			return res, fmt.Errorf("explore: fully unfolded at %.1f FPS, target %.1f unreachable", res.FPS, target)
		}
		ndf, nacc, err := evaluate(m, nf, opts, dev)
		if err != nil {
			return res, fmt.Errorf("explore: stopped at %.1f FPS: %w", res.FPS, err)
		}
		df = ndf
		res.Folding = nf
		res.FPS = ndf.FPS()
		res.Res = nacc.Res
		res.Iterations = it + 1
		res.Bottleneck = bottleneckModule(ndf).Name
	}
	if res.FPS < target {
		return res, fmt.Errorf("explore: iteration budget exhausted at %.1f FPS, target %.1f", res.FPS, target)
	}
	return res, nil
}

// MaxFPSWithin unfolds greedily while the design stays within the given
// LUT budget (and the device), returning the fastest point found.
func MaxFPSWithin(m *model.Model, lutBudget int, opts Options) (*Result, error) {
	if lutBudget <= 0 {
		return nil, fmt.Errorf("explore: non-positive LUT budget %d", lutBudget)
	}
	dev, maxIt := opts.defaults()
	f := MinimalFolding(m)
	df, acc, err := evaluate(m, f, opts, dev)
	if err != nil {
		return nil, err
	}
	if acc.Res.LUT > lutBudget {
		return nil, fmt.Errorf("explore: minimal folding already needs %d LUTs, budget %d", acc.Res.LUT, lutBudget)
	}
	res := &Result{Folding: f, FPS: df.FPS(), Res: acc.Res, Bottleneck: bottleneckModule(df).Name}
	for it := 0; it < maxIt; it++ {
		nf, ok := unfoldStep(m, res.Folding, bottleneckModule(df))
		if !ok {
			break
		}
		ndf, nacc, err := evaluate(m, nf, opts, dev)
		if err != nil || nacc.Res.LUT > lutBudget {
			break
		}
		df = ndf
		res.Folding = nf
		res.FPS = ndf.FPS()
		res.Res = nacc.Res
		res.Iterations = it + 1
		res.Bottleneck = bottleneckModule(ndf).Name
	}
	return res, nil
}
