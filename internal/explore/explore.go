// Package explore searches the PE/SIMD folding design space of a dataflow
// accelerator — the role of FINN's folding-configuration step. Starting
// from a minimal (fully folded) configuration it greedily unfolds the
// current bottleneck layer, one legal divisor step at a time, until a
// throughput target is met or a resource budget is exhausted. The search
// is exact with respect to the cycle and resource models in internal/finn
// and internal/synth.
//
// Evaluation is incremental: each greedy step changes the folding of one
// layer, so instead of re-mapping and re-synthesizing the whole network the
// searcher refolds the affected modules in place (finn.Dataflow.Refold) and
// patches only their cycle and resource contributions. Results are also
// memoized in a package-level cache (see cache.go) keyed by the full
// evaluation input, so repeated searches over the same model — the library
// sweep, frontier sweeps, warm benchmarks — skip shared prefixes entirely.
// Both paths are bit-identical to a fresh Map+Synthesize.
package explore

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/finn"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/synth"
)

// Result is one explored design point.
type Result struct {
	Folding    finn.Folding
	FPS        float64
	Res        synth.Resources
	Iterations int
	// Bottleneck names the module limiting throughput at the end.
	Bottleneck string
}

// Options tune the search.
type Options struct {
	// Device defaults to synth.ZCU104.
	Device *synth.Device
	// ClockHz defaults to finn.DefaultClockHz.
	ClockHz float64
	// MaxIterations bounds the greedy loop (default 256).
	MaxIterations int
	// Flexible explores the runtime-controllable variant (worst-case
	// sizing, higher resource cost).
	Flexible bool
}

func (o *Options) defaults() (synth.Device, int) {
	dev := synth.ZCU104
	if o.Device != nil {
		dev = *o.Device
	}
	it := o.MaxIterations
	if it == 0 {
		it = 256
	}
	return dev, it
}

// MinimalFolding returns the fully-folded configuration: PE=1 everywhere
// and the smallest legal SIMD (kernel-column granularity for convs, 1 for
// dense layers).
func MinimalFolding(m *model.Model) finn.Folding {
	convs := m.Net.Convs()
	denses := m.Net.Denses()
	f := finn.Folding{
		ConvPE:    make([]int, len(convs)),
		ConvSIMD:  make([]int, len(convs)),
		DensePE:   make([]int, len(denses)),
		DenseSIMD: make([]int, len(denses)),
	}
	for i := range convs {
		f.ConvPE[i] = 1
		f.ConvSIMD[i] = 1
	}
	for i := range denses {
		f.DensePE[i] = 1
		f.DenseSIMD[i] = 1
	}
	return f
}

// evalOut is one evaluated design point, whether served from cache or
// computed incrementally.
type evalOut struct {
	fps        float64
	res        synth.Resources
	bottleneck string
}

// searcher carries one greedy search's incremental evaluation state: the
// live dataflow, the folding it currently reflects, and per-module cycle
// and resource contributions so a one-layer folding change only touches
// that layer's modules.
type searcher struct {
	m     *model.Model
	opts  Options
	dev   synth.Device
	clock float64
	sig   string
	devk  string
	divs  *divisorTable

	df     *finn.Dataflow // nil until the first cache miss forces a Map
	cycles []int64
	perMod []synth.Resources
	res    synth.Resources
}

func newSearcher(m *model.Model, opts Options) *searcher {
	dev, _ := opts.defaults()
	clock := opts.ClockHz
	if clock == 0 {
		clock = finn.DefaultClockHz
	}
	return &searcher{
		m: m, opts: opts, dev: dev, clock: clock,
		sig:  modelSignature(m),
		devk: deviceKey(dev),
		divs: newDivisorTable(),
	}
}

func (s *searcher) key(f finn.Folding) evalKey {
	return evalKey{model: s.sig, fold: foldKey(f), dev: s.devk,
		flexible: s.opts.Flexible, clock: s.clock}
}

// eval returns the dataflow/synthesis outcome of folding f. Cache hits skip
// all model work; misses refold only the modules whose folding differs from
// the searcher's live dataflow and patch their cycle/resource shares, which
// the finn/synth purity invariants make bit-identical to a fresh
// Map+Synthesize (see TestIncrementalMatchesFull).
func (s *searcher) eval(f finn.Folding) (evalOut, error) {
	k := s.key(f)
	if v, ok := cacheGet(k); ok {
		return evalOut{fps: v.FPS, res: v.Res, bottleneck: v.Bottleneck}, nil
	}
	if s.df == nil {
		df, err := finn.Map(s.m, f, finn.Options{Flexible: s.opts.Flexible, ClockHz: s.opts.ClockHz})
		if err != nil {
			return evalOut{}, err
		}
		s.df = df
		s.cycles = make([]int64, len(df.Modules))
		s.perMod = make([]synth.Resources, len(df.Modules))
		s.res = synth.Overhead()
		for i, mod := range df.Modules {
			s.cycles[i] = mod.CyclesPerFrame()
			r := synth.ModuleResources(mod)
			s.perMod[i] = r
			s.res = s.res.Add(r)
		}
	} else {
		changed, err := s.df.Refold(f)
		if err != nil {
			return evalOut{}, err
		}
		for _, i := range changed {
			s.cycles[i] = s.df.Modules[i].CyclesPerFrame()
			r := synth.ModuleResources(s.df.Modules[i])
			s.res = s.res.Sub(s.perMod[i]).Add(r)
			s.perMod[i] = r
		}
	}
	if !s.dev.Fits(s.res) {
		// Same failure Synthesize would report; the searcher's dataflow
		// stays at the rejected folding, which is fine — both callers stop
		// evaluating after an error.
		return evalOut{}, fmt.Errorf("synth: %s does not fit %s: need %+v, have %+v",
			s.df.Name, s.dev.Name, s.res, s.dev.Resources)
	}
	out := evalOut{fps: s.fps(), res: s.res, bottleneck: s.bottleneck()}
	cachePut(k, evalResult{FPS: out.fps, Res: out.res, Bottleneck: out.bottleneck})
	return out, nil
}

// fps mirrors finn.Dataflow.FPS over the tracked cycle contributions.
func (s *searcher) fps() float64 {
	var ii int64
	for _, c := range s.cycles {
		if c > ii {
			ii = c
		}
	}
	if ii <= 0 {
		return 0
	}
	return s.clock / float64(ii)
}

// bottleneck mirrors the first-max scan the serial search used: the first
// module with the strictly largest cycle count wins ties.
func (s *searcher) bottleneck() string {
	best, idx := int64(-1), -1
	for i, c := range s.cycles {
		if c > best {
			best, idx = c, i
		}
	}
	if idx < 0 {
		return ""
	}
	return s.df.Modules[idx].Name
}

// layerIndex parses the module name produced by finn.Map ("mvtu3", "fc1",
// "swu2") into layer kind and index.
func layerIndex(name string) (conv bool, idx int, ok bool) {
	switch {
	case strings.HasPrefix(name, "mvtu"):
		i, err := strconv.Atoi(name[4:])
		return true, i, err == nil
	case strings.HasPrefix(name, "swu"):
		i, err := strconv.Atoi(name[3:])
		return true, i, err == nil
	case strings.HasPrefix(name, "fc"):
		i, err := strconv.Atoi(name[2:])
		return false, i, err == nil
	default:
		return false, 0, false
	}
}

// unfoldStep returns a copy of f with the bottleneck layer's cheaper axis
// advanced one divisor step, or ok=false when the layer is fully unfolded.
func (s *searcher) unfoldStep(f finn.Folding, bottleneck string) (finn.Folding, bool) {
	conv, idx, ok := layerIndex(bottleneck)
	if !ok {
		return f, false
	}
	nf := f.Clone()
	if conv {
		c := s.m.Net.Convs()[idx]
		k2 := c.Geom.KH * c.Geom.KW
		// Two axes: SIMD over K²·InC and PE over OutC. Advance the one
		// with the smaller relative jump; fall back to the other.
		ns := s.divs.next(k2*c.Geom.InC, f.ConvSIMD[idx])
		np := s.divs.next(c.OutC, f.ConvPE[idx])
		switch {
		case ns == 0 && np == 0:
			return f, false
		case np == 0,
			ns != 0 && float64(ns)/float64(f.ConvSIMD[idx]) <= float64(np)/float64(f.ConvPE[idx]):
			nf.ConvSIMD[idx] = ns
		default:
			nf.ConvPE[idx] = np
		}
		return nf, true
	}
	d := s.m.Net.Denses()[idx]
	ns := s.divs.next(d.In, f.DenseSIMD[idx])
	np := s.divs.next(d.Out, f.DensePE[idx])
	switch {
	case ns == 0 && np == 0:
		return f, false
	case np == 0,
		ns != 0 && float64(ns)/float64(f.DenseSIMD[idx]) <= float64(np)/float64(f.DensePE[idx]):
		nf.DenseSIMD[idx] = ns
	default:
		nf.DensePE[idx] = np
	}
	return nf, true
}

// TargetFPS unfolds until the dataflow reaches the target throughput (or
// the design no longer fits the device / cannot unfold further, in which
// case the best reached point is returned along with an error).
func TargetFPS(m *model.Model, target float64, opts Options) (*Result, error) {
	if target <= 0 {
		return nil, fmt.Errorf("explore: non-positive FPS target %v", target)
	}
	_, maxIt := opts.defaults()
	s := newSearcher(m, opts)
	f := MinimalFolding(m)
	ev, err := s.eval(f)
	if err != nil {
		return nil, err
	}
	res := &Result{Folding: f, FPS: ev.fps, Res: ev.res, Bottleneck: ev.bottleneck}
	for it := 0; it < maxIt && res.FPS < target; it++ {
		nf, ok := s.unfoldStep(res.Folding, res.Bottleneck)
		if !ok {
			return res, fmt.Errorf("explore: fully unfolded at %.1f FPS, target %.1f unreachable", res.FPS, target)
		}
		nev, err := s.eval(nf)
		if err != nil {
			return res, fmt.Errorf("explore: stopped at %.1f FPS: %w", res.FPS, err)
		}
		res.Folding = nf
		res.FPS = nev.fps
		res.Res = nev.res
		res.Iterations = it + 1
		res.Bottleneck = nev.bottleneck
	}
	if res.FPS < target {
		return res, fmt.Errorf("explore: iteration budget exhausted at %.1f FPS, target %.1f", res.FPS, target)
	}
	return res, nil
}

// MaxFPSWithin unfolds greedily while the design stays within the given
// LUT budget (and the device), returning the fastest point found.
func MaxFPSWithin(m *model.Model, lutBudget int, opts Options) (*Result, error) {
	if lutBudget <= 0 {
		return nil, fmt.Errorf("explore: non-positive LUT budget %d", lutBudget)
	}
	_, maxIt := opts.defaults()
	s := newSearcher(m, opts)
	f := MinimalFolding(m)
	ev, err := s.eval(f)
	if err != nil {
		return nil, err
	}
	if ev.res.LUT > lutBudget {
		return nil, fmt.Errorf("explore: minimal folding already needs %d LUTs, budget %d", ev.res.LUT, lutBudget)
	}
	res := &Result{Folding: f, FPS: ev.fps, Res: ev.res, Bottleneck: ev.bottleneck}
	for it := 0; it < maxIt; it++ {
		nf, ok := s.unfoldStep(res.Folding, res.Bottleneck)
		if !ok {
			break
		}
		nev, err := s.eval(nf)
		if err != nil || nev.res.LUT > lutBudget {
			break
		}
		res.Folding = nf
		res.FPS = nev.fps
		res.Res = nev.res
		res.Iterations = it + 1
		res.Bottleneck = nev.bottleneck
	}
	return res, nil
}

// FrontierPoint is one target of a Frontier sweep.
type FrontierPoint struct {
	TargetFPS float64
	Result    *Result
	Err       error
}

// Frontier runs TargetFPS for several throughput targets concurrently over
// at most jobs workers (jobs <= 0 means NumCPU). Each search owns its
// state; the shared evaluation cache only short-circuits recomputation, so
// results are index-aligned with targets and independent of jobs.
func Frontier(m *model.Model, targets []float64, opts Options, jobs int) []FrontierPoint {
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	pts := make([]FrontierPoint, len(targets))
	parallel.ForEach(len(targets), jobs, func(i int) {
		r, err := TargetFPS(m, targets[i], opts)
		pts[i] = FrontierPoint{TargetFPS: targets[i], Result: r, Err: err}
	})
	return pts
}
