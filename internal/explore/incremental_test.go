package explore

import (
	"reflect"
	"testing"

	"repro/internal/finn"
	"repro/internal/synth"
)

// TestIncrementalMatchesFull walks one greedy trajectory and checks every
// step of the searcher's incremental evaluation (Refold + patched
// cycle/resource shares) against a fresh Map+Synthesize of the same
// folding: identical FPS, identical resources, identical bottleneck.
func TestIncrementalMatchesFull(t *testing.T) {
	m := cnv(t)
	ResetCache()
	for _, flexible := range []bool{false, true} {
		opts := Options{Flexible: flexible}
		s := newSearcher(m, opts)
		f := MinimalFolding(m)
		for step := 0; step < 60; step++ {
			ev, err := s.eval(f)
			if err != nil {
				t.Fatalf("flexible=%v step %d: %v", flexible, step, err)
			}
			df, err := finn.Map(m, f, finn.Options{Flexible: flexible})
			if err != nil {
				t.Fatal(err)
			}
			acc, err := synth.Synthesize(df, synth.ZCU104)
			if err != nil {
				t.Fatal(err)
			}
			var worst *finn.Module
			var cycles int64 = -1
			for _, mod := range df.Modules {
				if c := mod.CyclesPerFrame(); c > cycles {
					cycles, worst = c, mod
				}
			}
			if ev.fps != df.FPS() {
				t.Fatalf("flexible=%v step %d: FPS %v != fresh %v", flexible, step, ev.fps, df.FPS())
			}
			if ev.res != acc.Res {
				t.Fatalf("flexible=%v step %d: Res %+v != fresh %+v", flexible, step, ev.res, acc.Res)
			}
			if ev.bottleneck != worst.Name {
				t.Fatalf("flexible=%v step %d: bottleneck %q != fresh %q", flexible, step, ev.bottleneck, worst.Name)
			}
			nf, ok := s.unfoldStep(f, ev.bottleneck)
			if !ok {
				break
			}
			f = nf
		}
	}
}

// TestEvalCacheDeterminism reruns the same search and requires (a) an
// identical Result and (b) zero new misses — the whole second trajectory
// must be served from the cache, including the bottleneck choices that
// steer it.
func TestEvalCacheDeterminism(t *testing.T) {
	m := cnv(t)
	ResetCache()
	r1, err := TargetFPS(m, 400, Options{MaxIterations: 2000})
	if err != nil {
		t.Fatal(err)
	}
	_, misses1 := CacheStats()
	if misses1 == 0 {
		t.Fatal("cold search reported no cache misses")
	}
	r2, err := TargetFPS(m, 400, Options{MaxIterations: 2000})
	if err != nil {
		t.Fatal(err)
	}
	hits2, misses2 := CacheStats()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("warm search diverged:\n cold: %+v\n warm: %+v", r1, r2)
	}
	if misses2 != misses1 {
		t.Fatalf("warm search missed the cache %d times", misses2-misses1)
	}
	if hits2 == 0 {
		t.Fatal("warm search hit the cache zero times")
	}
	// A lower target walks a prefix of the same trajectory: also all hits.
	if _, err := TargetFPS(m, 100, Options{MaxIterations: 2000}); err != nil {
		t.Fatal(err)
	}
	if _, misses3 := CacheStats(); misses3 != misses1 {
		t.Fatalf("prefix search missed the cache %d times", misses3-misses1)
	}
}

func TestResetCacheClearsStats(t *testing.T) {
	m := cnv(t)
	if _, err := TargetFPS(m, 50, Options{MaxIterations: 2000}); err != nil {
		t.Fatal(err)
	}
	ResetCache()
	if h, ms := CacheStats(); h != 0 || ms != 0 {
		t.Fatalf("stats not reset: hits=%d misses=%d", h, ms)
	}
}

// TestFrontierDeterministic runs the same multi-target sweep serially and
// concurrently (exercised under -race by make test-race) and requires
// index-aligned, identical results.
func TestFrontierDeterministic(t *testing.T) {
	m := cnv(t)
	targets := []float64{50, 100, 200, 400, 600, 1e9}
	ResetCache()
	serial := Frontier(m, targets, Options{MaxIterations: 2000}, 1)
	ResetCache()
	par := Frontier(m, targets, Options{MaxIterations: 2000}, 4)
	if len(serial) != len(par) {
		t.Fatalf("length mismatch: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i].TargetFPS != par[i].TargetFPS {
			t.Fatalf("point %d: target %v vs %v", i, serial[i].TargetFPS, par[i].TargetFPS)
		}
		if (serial[i].Err == nil) != (par[i].Err == nil) {
			t.Fatalf("point %d: err %v vs %v", i, serial[i].Err, par[i].Err)
		}
		if serial[i].Err != nil && serial[i].Err.Error() != par[i].Err.Error() {
			t.Fatalf("point %d: err %q vs %q", i, serial[i].Err, par[i].Err)
		}
		if !reflect.DeepEqual(serial[i].Result, par[i].Result) {
			t.Fatalf("point %d diverged:\n serial: %+v\n par:    %+v", i, serial[i].Result, par[i].Result)
		}
	}
}
