package explore

import (
	"testing"

	"repro/internal/finn"
	"repro/internal/model"
	"repro/internal/synth"
)

func cnv(t *testing.T) *model.Model {
	t.Helper()
	m, err := model.CNVW2A2("cifar10", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMinimalFoldingLegal(t *testing.T) {
	m := cnv(t)
	f := MinimalFolding(m)
	if err := f.Validate(m); err != nil {
		t.Fatal(err)
	}
	df, err := finn.Map(m, f, finn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if df.FPS() > 50 {
		t.Fatalf("minimal folding suspiciously fast: %.1f FPS", df.FPS())
	}
}

func TestTargetFPSReached(t *testing.T) {
	m := cnv(t)
	res, err := TargetFPS(m, 400, Options{MaxIterations: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.FPS < 400 {
		t.Fatalf("FPS = %.1f, wanted ≥400", res.FPS)
	}
	if err := res.Folding.Validate(m); err != nil {
		t.Fatalf("explored folding illegal: %v", err)
	}
	if res.Iterations == 0 {
		t.Fatal("no unfolding performed")
	}
	if !synth.ZCU104.Fits(res.Res) {
		t.Fatal("result does not fit the device")
	}
}

func TestTargetFPSMonotoneCost(t *testing.T) {
	m := cnv(t)
	slow, err := TargetFPS(m, 100, Options{MaxIterations: 2000})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := TargetFPS(m, 800, Options{MaxIterations: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Res.LUT <= slow.Res.LUT {
		t.Fatalf("faster design not costlier: %d vs %d LUTs", fast.Res.LUT, slow.Res.LUT)
	}
	if fast.FPS <= slow.FPS {
		t.Fatal("FPS not increasing with target")
	}
}

func TestTargetFPSUnreachable(t *testing.T) {
	m := cnv(t)
	res, err := TargetFPS(m, 1e9, Options{MaxIterations: 5000})
	if err == nil {
		t.Fatal("impossible target reported success")
	}
	if res == nil || res.FPS <= 0 {
		t.Fatal("no best-effort result returned")
	}
}

func TestTargetFPSValidation(t *testing.T) {
	m := cnv(t)
	if _, err := TargetFPS(m, 0, Options{}); err == nil {
		t.Fatal("zero target accepted")
	}
}

func TestMaxFPSWithinBudget(t *testing.T) {
	m := cnv(t)
	small, err := MaxFPSWithin(m, 30_000, Options{MaxIterations: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if small.Res.LUT > 30_000 {
		t.Fatalf("budget exceeded: %d", small.Res.LUT)
	}
	big, err := MaxFPSWithin(m, 120_000, Options{MaxIterations: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if big.Res.LUT > 120_000 {
		t.Fatalf("budget exceeded: %d", big.Res.LUT)
	}
	if big.FPS <= small.FPS {
		t.Fatalf("bigger budget not faster: %.1f vs %.1f", big.FPS, small.FPS)
	}
	if _, err := MaxFPSWithin(m, 0, Options{}); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := MaxFPSWithin(m, 100, Options{}); err == nil {
		t.Fatal("budget below minimal design accepted")
	}
}

// The explorer should beat or match the handcrafted DefaultFolding at the
// same throughput: given the default's FPS as target, the explored design
// must not need wildly more LUTs.
func TestExploreCompetitiveWithDefault(t *testing.T) {
	m := cnv(t)
	def := finn.DefaultFolding(m)
	df, err := finn.Map(m, def, finn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := synth.Synthesize(df, synth.ZCU104)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TargetFPS(m, df.FPS(), Options{MaxIterations: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.Res.LUT) > 1.3*float64(acc.Res.LUT) {
		t.Fatalf("explored design needs %d LUTs vs default %d at %.0f FPS",
			res.Res.LUT, acc.Res.LUT, df.FPS())
	}
}

func TestNextDivisor(t *testing.T) {
	cases := []struct{ n, cur, want int }{
		{12, 1, 2}, {12, 2, 3}, {12, 3, 4}, {12, 4, 6}, {12, 6, 12}, {12, 12, 0},
		{7, 1, 7}, {7, 7, 0},
	}
	for _, c := range cases {
		if got := nextDivisor(c.n, c.cur); got != c.want {
			t.Errorf("nextDivisor(%d,%d) = %d, want %d", c.n, c.cur, got, c.want)
		}
	}
}

func TestLayerIndexParsing(t *testing.T) {
	if conv, i, ok := layerIndex("mvtu3"); !ok || !conv || i != 3 {
		t.Fatal("mvtu3 parse failed")
	}
	if conv, i, ok := layerIndex("swu0"); !ok || !conv || i != 0 {
		t.Fatal("swu0 parse failed")
	}
	if conv, i, ok := layerIndex("fc2"); !ok || conv || i != 2 {
		t.Fatal("fc2 parse failed")
	}
	if _, _, ok := layerIndex("pool@7"); ok {
		t.Fatal("pool parsed as foldable")
	}
}
