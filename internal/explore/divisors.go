package explore

import "sort"

// The greedy unfold loop advances one folding axis per step, and every
// step needs "the next legal divisor" of that axis's dimension. Scanning
// 1..n per query is O(n) and runs thousands of times per search, so each
// search precomputes the sorted divisor list per distinct dimension once
// and binary-searches it.

// divisorsOf returns all divisors of n in ascending order (O(√n) to
// enumerate, O(d log d) to sort the handful found).
func divisorsOf(n int) []int {
	if n <= 0 {
		return nil
	}
	var divs []int
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			divs = append(divs, d)
			if q := n / d; q != d {
				divs = append(divs, q)
			}
		}
	}
	sort.Ints(divs)
	return divs
}

// nextDivisorIn returns the smallest element of the ascending-sorted divs
// strictly greater than cur, or 0 when cur is the largest.
func nextDivisorIn(divs []int, cur int) int {
	i := sort.SearchInts(divs, cur+1)
	if i == len(divs) {
		return 0
	}
	return divs[i]
}

// nextDivisor returns the smallest divisor of n strictly greater than cur,
// or 0 when cur is already n. Standalone form of the table lookup below;
// the search loop goes through divisorTable so each dimension is factored
// once per search.
func nextDivisor(n, cur int) int {
	return nextDivisorIn(divisorsOf(n), cur)
}

// divisorTable memoizes sorted divisor lists per dimension for one search.
// Layer dimensions repeat heavily (CNV reuses 64/128/256-channel shapes),
// so the table stays tiny.
type divisorTable struct {
	byN map[int][]int
}

func newDivisorTable() *divisorTable { return &divisorTable{byN: map[int][]int{}} }

func (t *divisorTable) next(n, cur int) int {
	divs, ok := t.byN[n]
	if !ok {
		divs = divisorsOf(n)
		t.byN[n] = divs
	}
	return nextDivisorIn(divs, cur)
}
