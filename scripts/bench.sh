#!/bin/sh
# Tracked benchmark baseline: runs the key design-time and substrate
# benchmarks and writes their numbers to BENCH_PR10.json via cmd/benchjson.
# Run from the repository root (or via `make bench`).
#
# Environment overrides:
#   BENCH_OUT      output JSON path        (default BENCH_PR10.json)
#   BENCH_PATTERN  -bench regexp           (default: the tracked set below)
#   BENCH_TIME     -benchtime              (default 1s)
#   BENCH_COUNT    -count                  (default 1)
#   BENCH_NOTE     _note string embedded in the JSON
set -eu

cd "$(dirname "$0")/.."

BENCH_OUT=${BENCH_OUT:-BENCH_PR10.json}
BENCH_PATTERN=${BENCH_PATTERN:-'BenchmarkLibraryGenerate|BenchmarkExploreTargetFPS|BenchmarkGemm$|BenchmarkGemmInt8$|BenchmarkConvForward|BenchmarkDESKernel|BenchmarkRunEdge$|BenchmarkPoolRun|BenchmarkClusterRun'}
BENCH_TIME=${BENCH_TIME:-1s}
BENCH_COUNT=${BENCH_COUNT:-1}
BENCH_NOTE=${BENCH_NOTE:-'measured in a 1-core container: worker-pool speedups do not show, and ns/op is noisy across runs; the tracked regression gate compares ns/op with generous tolerance and the alloc counts are the stable signal'}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== go test -bench '$BENCH_PATTERN' (benchtime $BENCH_TIME, count $BENCH_COUNT)"
go test -run '^$' -bench "$BENCH_PATTERN" -benchmem \
	-benchtime "$BENCH_TIME" -count "$BENCH_COUNT" . | tee "$tmp"

echo "== writing $BENCH_OUT"
go run ./cmd/benchjson -o "$BENCH_OUT" -note "$BENCH_NOTE" "$tmp"
echo "bench: baseline written to $BENCH_OUT"
