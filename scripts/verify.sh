#!/bin/sh
# Full local verification: formatting, vet, build, tests, and the race
# detector over the packages that use the tensor worker pool.
# Run from the repository root (or via `make verify`).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (concurrent + serving packages)"
make test-race

echo "== chaos suite (seeded fault injection)"
make test-chaos

echo "== bench smoke (one fast kernel benchmark through scripts/bench.sh)"
bench_out=$(mktemp)
BENCH_OUT="$bench_out" BENCH_TIME=1x BENCH_PATTERN='BenchmarkDESKernel' ./scripts/bench.sh
grep -q 'BenchmarkDESKernel' "$bench_out"
rm -f "$bench_out"

echo "verify: OK"
