#!/bin/sh
# Full local verification: formatting, vet, build, tests, and the race
# detector over the packages that use the tensor worker pool.
# Run from the repository root (or via `make verify`).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== fuzz smoke (fault-plan grammar, 10s)"
go test -run '^$' -fuzz FuzzParsePlan -fuzztime=10s ./internal/fault/

echo "== fuzz smoke (round-half-away quantizer helper, 5s)"
go test -run '^$' -fuzz FuzzRoundHalfAway -fuzztime=5s ./internal/quant/

echo "== fuzz smoke (calendar-vs-heap event queue, 10s)"
go test -run '^$' -fuzz FuzzCalendarQueue -fuzztime=10s ./internal/sim/

echo "== fuzz smoke (stream-spec grammar, 10s)"
go test -run '^$' -fuzz FuzzStreamSpec -fuzztime=10s ./internal/cluster/

echo "== fuzz smoke (workload-scenario grammar, 10s)"
go test -run '^$' -fuzz FuzzParseScenario -fuzztime=10s ./internal/edge/

echo "== go test -race (concurrent + serving packages)"
make test-race

echo "== chaos suite (seeded fault injection)"
make test-chaos

echo "== golden traces (scenario + decision streams)"
make trace-golden

echo "== bench smoke (one fast kernel benchmark through scripts/bench.sh)"
bench_out=$(mktemp)
BENCH_OUT="$bench_out" BENCH_TIME=1x BENCH_PATTERN='BenchmarkDESKernel' ./scripts/bench.sh
grep -q 'BenchmarkDESKernel' "$bench_out"
rm -f "$bench_out"

echo "== overhead guards (BenchmarkRunEdge + BenchmarkPoolRun + BenchmarkClusterRun + BenchmarkDESKernel vs BENCH_PR10.json)"
# Tracing off must stay free on the serving hot path, pool supervision
# must stay cheap on the healthy path (<2% claims, measured back to back
# in DESIGN.md), adaptation must stay free when disabled (the fluid
# variant IS the disabled-adapt path), and the calendar-queue DES kernel
# must not regress toward the old heap numbers. The committed baseline
# was measured on one machine and this guard may run on another, so the
# tolerance is generous (25%). Skips cleanly if the baseline lacks the
# benchmarks.
if grep -q 'BenchmarkRunEdge\|BenchmarkPoolRun' BENCH_PR10.json; then
	overhead_out=$(mktemp)
	# -count 3: benchjson keeps the fastest of repeats, damping the
	# heavy scheduler noise of small containers.
	go test -run '^$' -bench 'BenchmarkRunEdge$|BenchmarkPoolRun|BenchmarkClusterRun|BenchmarkDESKernel' -benchtime 0.5s -count 3 . | tee "$overhead_out"
	go run ./cmd/benchjson -check -baseline BENCH_PR10.json -tol 0.25 "$overhead_out"
	rm -f "$overhead_out"
else
	echo "BENCH_PR10.json has no BenchmarkRunEdge/BenchmarkPoolRun entry; skipping"
fi

echo "verify: OK"
