// Quickstart: build a tiny quantized CNN, generate an AdaFlow library with
// real (trained) accuracy measurements, and let the Runtime Manager pick
// serving configurations for a few workload levels.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	adaflow "repro"
)

func main() {
	log.SetFlags(0)

	// A 4-class synthetic dataset and a tiny CNV-style model (2-bit
	// weights, 2-bit activations) that trains in well under a second.
	ds := adaflow.TinyDataset(1)
	m, err := adaflow.NewTinyCNV("tinycnv-w2a2", ds.Name, 2, ds.Classes, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Design time: generate the library. Each pruned version is retrained
	// on the dataset and measured (the paper's retrain-for-40-epochs step,
	// scaled down).
	opts := adaflow.DefaultTrainOptions()
	opts.Epochs = 2
	opts.Samples = 120
	lib, err := adaflow.GenerateLibrary(m, adaflow.LibraryConfig{
		Rates:      []float64{0, 0.25, 0.5},
		Evaluator:  adaflow.NewTrainedEvaluator(ds, opts),
		KeepModels: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("library:")
	for _, e := range lib.Entries {
		fmt.Printf("  rate %.0f%%  channels %v  accuracy %.1f%%  fixed %.0f FPS  flex %.0f FPS\n",
			e.NominalRate*100, e.Channels, e.Accuracy*100, e.FixedFPS, e.FlexFPS)
	}
	fmt.Printf("flexible accelerator LUTs: %d (baseline FINN: %d)\n\n",
		lib.Flexible.Res.LUT, lib.Baseline.Res.LUT)

	// Run time: the manager reacts to workload levels.
	mgr, err := adaflow.NewRuntimeManager(lib, adaflow.DefaultManagerConfig())
	if err != nil {
		log.Fatal(err)
	}
	for i, fps := range []float64{1000, 800000, 2000} {
		d, changed := mgr.Decide(float64(i), fps)
		e := lib.Entries[d.Entry]
		cost := "no change"
		if changed {
			cost = fmt.Sprintf("switch cost %v", d.SwitchCost)
		}
		fmt.Printf("workload %6.0f FPS → version %.0f%% pruned on %s accelerator (%s)\n",
			fps, e.NominalRate*100, d.Kind, cost)
	}
}
