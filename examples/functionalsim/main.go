// Functionalsim: functionally simulate the dataflow accelerator (the
// Verilator-style check of the paper's methodology). A tiny model is
// trained, lowered to SWU/MVTU stages with threshold ladders, and run on
// the test set three ways: the nn engine, a Fixed-Pruning program, and a
// worst-case-synthesized Flexible-Pruning program that fast-switches
// between the unpruned and a pruned version — all three must agree.
//
// Run with: go run ./examples/functionalsim
package main

import (
	"fmt"
	"log"

	adaflow "repro"
	"repro/internal/finn"
	"repro/internal/prune"
	"repro/internal/train"
)

func main() {
	log.SetFlags(0)

	ds := adaflow.TinyDataset(13)
	m, err := adaflow.NewTinyCNV("tinycnv-w2a2", ds.Name, 2, ds.Classes, 13)
	if err != nil {
		log.Fatal(err)
	}
	opts := adaflow.DefaultTrainOptions()
	opts.Epochs = 2
	tr, err := train.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tr.Fit(m, ds); err != nil {
		log.Fatal(err)
	}

	fold := finn.DefaultFolding(m)
	gs, err := fold.ChannelGranularity(m)
	if err != nil {
		log.Fatal(err)
	}
	pruned, _, err := prune.Shrink(m, 0.5, gs)
	if err != nil {
		log.Fatal(err)
	}

	fixed, err := adaflow.CompileProgram(m, false)
	if err != nil {
		log.Fatal(err)
	}
	flex, err := adaflow.CompileProgram(m, true)
	if err != nil {
		log.Fatal(err)
	}

	agree := func(p *adaflow.Program, ref *adaflow.Model, n int) int {
		matches := 0
		for i := 0; i < n; i++ {
			x, _ := ds.TestSample(i)
			want, err := ref.Net.Forward(x, false)
			if err != nil {
				log.Fatal(err)
			}
			got, err := p.Run(x)
			if err != nil {
				log.Fatal(err)
			}
			if got.ArgMax() == want.ArgMax() {
				matches++
			}
		}
		return matches
	}

	const n = 40
	fmt.Printf("fixed program vs nn engine (unpruned):   %d/%d predictions agree\n", agree(fixed, m, n), n)
	fmt.Printf("flexible program vs nn engine (unpruned): %d/%d predictions agree\n", agree(flex, m, n), n)

	// Fast model switch: load the pruned version into the same flexible
	// program (channel-port write + weight reload, no reconfiguration).
	if err := flex.LoadModel(pruned); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flexible program after fast switch to 50%% pruned (channels %v → %v): %d/%d agree with the pruned model\n",
		flex.WorstChannels, flex.CurChannels, agree(flex, pruned, n), n)

	// And back.
	if err := flex.LoadModel(m); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flexible program after switching back:   %d/%d agree with the unpruned model\n", agree(flex, m, n), n)
}
