// Designspace: explore the accuracy/throughput/resource/energy design
// space AdaFlow's Library Generator opens up for CNVW2A2 on both datasets
// (Figures 1(a) and 5 of the paper).
//
// Run with: go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	adaflow "repro"
)

func main() {
	log.SetFlags(0)
	for _, ds := range []string{"cifar10", "gtsrb"} {
		classes := 10
		if ds == "gtsrb" {
			classes = 43
		}
		m, err := adaflow.NewCNVW2A2(ds, classes, 1)
		if err != nil {
			log.Fatal(err)
		}
		ev, err := adaflow.NewCalibratedEvaluator("CNVW2A2", ds)
		if err != nil {
			log.Fatal(err)
		}
		lib, err := adaflow.GenerateLibrary(m, adaflow.LibraryConfig{Evaluator: ev})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("design space: CNVW2A2 on %s (flexible accel: %d LUTs = %.2fx FINN)\n",
			ds, lib.Flexible.Res.LUT,
			float64(lib.Flexible.Res.LUT)/float64(lib.Baseline.Res.LUT))
		fmt.Printf("%-6s %-10s %-9s %-9s %-8s %-9s\n", "rate", "accuracy%", "FPS", "LUT", "BRAM", "mJ/inf")
		for _, e := range lib.Entries {
			fmt.Printf("%-6.2f %-10.2f %-9.1f %-9d %-8d %-9.3f\n",
				e.NominalRate, e.Accuracy*100, e.FixedFPS,
				e.Fixed.Res.LUT, e.Fixed.Res.BRAM,
				e.Fixed.TotalEnergyPerInference()*1e3)
		}
		fmt.Println()
	}
}
