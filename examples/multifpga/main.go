// Multifpga: scale the AdaFlow edge server to a pool of FPGAs (the
// authors' multi-FPGA follow-up direction). A 3-board pool serves 60
// cameras under the unpredictable workload; compare with a single board
// trying to serve the same stream.
//
// Run with: go run ./examples/multifpga
package main

import (
	"fmt"
	"log"

	adaflow "repro"
	"repro/internal/edge"
	"repro/internal/manager"
	"repro/internal/multiedge"
)

func main() {
	log.SetFlags(0)

	m, err := adaflow.NewCNVW2A2("cifar10", 10, 1)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := adaflow.NewCalibratedEvaluator("CNVW2A2", "cifar10")
	if err != nil {
		log.Fatal(err)
	}
	lib, err := adaflow.GenerateLibrary(m, adaflow.LibraryConfig{Evaluator: ev})
	if err != nil {
		log.Fatal(err)
	}

	// 60 cameras: 1800 FPS mean — far beyond one board.
	scn, err := adaflow.ParseScenario("base:name=scenario2,devices=60 | unpredictable")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d cameras x %.0f FPS (%s)\n\n", scn.Devices, scn.PerDeviceFPS, scn.Name)

	single, err := manager.New(lib, manager.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sres, err := adaflow.RunEdge(scn, edge.NewAdaFlow(single), adaflow.SimConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s loss %6.2f%%  QoE %6.2f%%  power %6.3f W  %6.1f inf/J\n",
		"1 board", sres.FrameLossPct, sres.QoEPct, sres.AvgPowerW, sres.PowerEff)

	for _, boards := range []int{2, 3, 4} {
		pool, err := multiedge.NewPool(lib, boards, manager.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		res, err := adaflow.RunEdge(scn, pool, adaflow.SimConfig{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s loss %6.2f%%  QoE %6.2f%%  power %6.3f W  %6.1f inf/J  (%d switches, %d reconfigs)\n",
			fmt.Sprintf("%d-board pool", boards), res.FrameLossPct, res.QoEPct,
			res.AvgPowerW, res.PowerEff, pool.Switches(), pool.Reconfigs())
	}
}
