// Surveillance: the paper's motivating scenario end to end — 20 IoT
// cameras stream frames at 30 FPS to an FPGA-equipped Edge server for 25 s
// under the hybrid workload (stable, then unpredictable at 15 s). Compares
// the static FINN baseline against AdaFlow and prints the switch timeline
// plus an ASCII frame-loss sketch of Figure 6(a).
//
// Run with: go run ./examples/surveillance
package main

import (
	"fmt"
	"log"
	"strings"

	adaflow "repro"
)

func main() {
	log.SetFlags(0)

	m, err := adaflow.NewCNVW2A2("cifar10", 10, 1)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := adaflow.NewCalibratedEvaluator("CNVW2A2", "cifar10")
	if err != nil {
		log.Fatal(err)
	}
	lib, err := adaflow.GenerateLibrary(m, adaflow.LibraryConfig{Evaluator: ev})
	if err != nil {
		log.Fatal(err)
	}

	scn, err := adaflow.ParseScenario("paper12")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %s: %d devices x %.0f FPS for %.0f s\n\n",
		scn.Name, scn.Devices, scn.PerDeviceFPS, scn.Duration)

	finnRes, err := adaflow.RunEdge(scn, adaflow.NewStaticFINNController(lib), adaflow.SimConfig{Seed: 1, RecordTrace: true})
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := adaflow.NewRuntimeManager(lib, adaflow.DefaultManagerConfig())
	if err != nil {
		log.Fatal(err)
	}
	adaRes, err := adaflow.RunEdge(scn, adaflow.NewAdaFlowController(mgr), adaflow.SimConfig{Seed: 1, RecordTrace: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s loss %6.2f%%  QoE %6.2f%%  power %.3f W  %6.1f inf/J\n",
		"FINN", finnRes.FrameLossPct, finnRes.QoEPct, finnRes.AvgPowerW, finnRes.PowerEff)
	fmt.Printf("%-10s loss %6.2f%%  QoE %6.2f%%  power %.3f W  %6.1f inf/J\n\n",
		"AdaFlow", adaRes.FrameLossPct, adaRes.QoEPct, adaRes.AvgPowerW, adaRes.PowerEff)

	fmt.Println("AdaFlow switch timeline:")
	for _, ev := range adaRes.Switches {
		kind := "fast switch"
		if ev.Reconfigured {
			kind = "FPGA reconfig"
		}
		fmt.Printf("  t=%6.2fs  %-16s (%s)\n", ev.Time, ev.Label, kind)
	}

	// ASCII cumulative frame-loss curves, one row per second.
	fmt.Println("\ncumulative frame loss (#=FINN, *=AdaFlow), 0-40% scale:")
	for s := 1; s <= int(scn.Duration); s++ {
		i := s*100 - 1
		f := finnRes.Trace[i].LossPct
		a := adaRes.Trace[i].LossPct
		row := []byte(strings.Repeat(" ", 41))
		fi := int(f + 0.5)
		ai := int(a + 0.5)
		if fi > 40 {
			fi = 40
		}
		if ai > 40 {
			ai = 40
		}
		row[fi] = '#'
		row[ai] = '*'
		fmt.Printf("t=%2ds |%s| FINN %5.1f%%  AdaFlow %5.1f%%\n", s, string(row), f, a)
	}
}
