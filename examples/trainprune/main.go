// Trainprune: exercise the full train → prune → retrain → evaluate
// mechanism on a tiny quantized model, then round-trip the pruned model
// through the serialization format (the paper's ONNX-export step) and
// verify the reloaded model computes identically.
//
// Run with: go run ./examples/trainprune
package main

import (
	"bytes"
	"fmt"
	"log"
	"runtime"

	adaflow "repro"
	"repro/internal/accuracy"
	"repro/internal/finn"
	"repro/internal/prune"
	"repro/internal/train"
)

func main() {
	log.SetFlags(0)

	ds := adaflow.TinyDataset(7)
	m, err := adaflow.NewTinyCNV("tinycnv-w2a2", ds.Name, 2, ds.Classes, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Initial training; evaluation fans out over all cores (predictions
	// are exact, only wall-clock changes).
	workers := runtime.NumCPU()
	opts := adaflow.DefaultTrainOptions()
	opts.Epochs = 3
	opts.EvalWorkers = workers
	tr, err := train.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	res, err := tr.Fit(m, ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial model: %d params, train %.1f%%, test %.1f%%\n",
		m.Net.ParamCount(), res.TrainAcc*100, res.TestAcc*100)

	// Dataflow-aware pruning at 50% under the default folding constraints.
	fold := finn.DefaultFolding(m)
	gran, err := fold.ChannelGranularity(m)
	if err != nil {
		log.Fatal(err)
	}
	pruned, plan, err := prune.Shrink(m, 0.5, gran)
	if err != nil {
		log.Fatal(err)
	}
	before, err := train.ParallelEvaluate(pruned, ds, workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pruned 50%% (effective %.1f%%): channels %v → %v, test %.1f%% before retraining\n",
		plan.EffectiveRate*100, m.ConvChannels(), pruned.ConvChannels(), before*100)

	// Retraining recovers accuracy (paper §IV-A1).
	rtr, err := train.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := rtr.Fit(pruned, ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after retraining: %d params, test %.1f%%\n", pruned.Net.ParamCount(), res2.TestAcc*100)
	fmt.Printf("effective prune fraction: %.2f\n", accuracy.EffectivePruneFraction(pruned))

	// Export/import round trip (the ONNX step in the paper's flow).
	var buf bytes.Buffer
	if err := adaflow.SaveModel(&buf, pruned); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	back, err := adaflow.LoadModel(&buf)
	if err != nil {
		log.Fatal(err)
	}
	accBack, err := train.ParallelEvaluate(back, ds, workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized %d bytes; reloaded model test accuracy %.1f%% (identical: %v)\n",
		size, accBack*100, accBack == res2.TestAcc)
}
