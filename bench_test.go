package adaflow

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the DESIGN.md ablations and micro-benchmarks of the
// hot substrates. Key reproduction numbers are attached to the benchmark
// output via b.ReportMetric, so `go test -bench=. -benchmem` regenerates
// the paper's result set; cmd/adaflow-repro prints the full tables.

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/dataset"
	"repro/internal/edge"
	"repro/internal/experiments"
	"repro/internal/explore"
	"repro/internal/finn"
	"repro/internal/library"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/quant"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/train"
)

// benchRuns keeps per-iteration simulation cost reasonable; the paper
// averages 100 runs, which cmd/adaflow-repro uses by default.
const benchRuns = 10

// BenchmarkFig1a regenerates Figure 1(a): accuracy and FPS vs pruning rate
// for CNVW2A2/CIFAR-10 on FINN.
func BenchmarkFig1a(b *testing.B) {
	var last *experiments.Fig1aResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1a()
		if err != nil {
			b.Fatal(err)
		}
		r.WriteText(io.Discard)
		last = r
	}
	first, end := last.Points[0], last.Points[len(last.Points)-1]
	b.ReportMetric(first.FPS, "baseline-FPS")
	b.ReportMetric(end.FPS/first.FPS, "fps-gain-85pct")
	b.ReportMetric((first.Accuracy-end.Accuracy)*100, "acc-drop-85pct-pts")
}

// BenchmarkFig1b regenerates Figure 1(b): frame loss vs reconfiguration
// time for model switching via FPGA reconfigurations.
func BenchmarkFig1b(b *testing.B) {
	var last *experiments.Fig1bResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1b(benchRuns, 1)
		if err != nil {
			b.Fatal(err)
		}
		r.WriteText(io.Discard)
		last = r
	}
	for _, s := range last.Series {
		switch s.Label {
		case "No Pruning":
			b.ReportMetric(s.FrameLossPct, "loss-nopruning-pct")
		case "Pruning Reconf. 0ms":
			b.ReportMetric(s.FrameLossPct, "loss-ideal-pct")
		case "Pruning Reconf. 362ms":
			b.ReportMetric(s.FrameLossPct, "loss-362ms-pct")
		}
	}
}

// BenchmarkFig5a regenerates Figure 5(a): FPGA resources for FINN vs
// Flexible vs Fixed accelerators.
func BenchmarkFig5a(b *testing.B) {
	var last *experiments.Fig5aResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5a()
		if err != nil {
			b.Fatal(err)
		}
		r.WriteText(io.Discard)
		last = r
	}
	b.ReportMetric(last.MeasuredFlexLUTRatio, "flex-LUT-ratio(paper-1.92)")
	b.ReportMetric(last.MeasuredFixedRed85Pct*100, "fixed-LUT-red-85pct(paper-46.2)")
}

// BenchmarkFig5b regenerates Figure 5(b): accuracy vs energy per
// inference on CIFAR-10.
func BenchmarkFig5b(b *testing.B) {
	benchFig5bc(b, "cifar10")
}

// BenchmarkFig5c regenerates Figure 5(c): the same on GTSRB.
func BenchmarkFig5c(b *testing.B) {
	benchFig5bc(b, "gtsrb")
}

func benchFig5bc(b *testing.B, ds string) {
	b.Helper()
	var last *experiments.Fig5bcResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5bc(ds)
		if err != nil {
			b.Fatal(err)
		}
		r.WriteText(io.Discard)
		last = r
	}
	b.ReportMetric(last.MeasuredFixedRed25, "fixed-energy-red-25pct(paper-1.64)")
	b.ReportMetric(last.MeasuredFlexRed25, "flex-energy-red-25pct(paper-1.38)")
}

// BenchmarkTable1 regenerates Table I: frame loss, QoE, power, power
// efficiency across all dataset/model pairs and scenarios.
func BenchmarkTable1(b *testing.B) {
	var last *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(benchRuns, 1)
		if err != nil {
			b.Fatal(err)
		}
		r.WriteText(io.Discard)
		last = r
	}
	var eff, proc float64
	for _, row := range last.Rows {
		eff += row.PowerEffRatio
		if row.FINN.Processed > 0 {
			proc += row.AdaFlow.Processed / row.FINN.Processed
		}
	}
	n := float64(len(last.Rows))
	b.ReportMetric(proc/n, "avg-inference-gain(paper-1.3)")
	b.ReportMetric(eff/n, "avg-power-eff(paper-1.27)")
}

// BenchmarkFig6a regenerates Figure 6(a): frame-loss traces with model
// switches under Scenarios 1, 2 and 1+2.
func BenchmarkFig6a(b *testing.B) {
	var last *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(1)
		if err != nil {
			b.Fatal(err)
		}
		r.WriteText(io.Discard)
		last = r
	}
	for _, s := range last.Series {
		if s.Label == "AdaFlow" && s.Scenario == "scenario2" {
			b.ReportMetric(float64(s.Stats.Switches), "scen2-switches(paper-31)")
			b.ReportMetric(float64(s.Stats.Reconfigs), "scen2-reconfigs(paper-~0)")
		}
	}
}

// BenchmarkFig6b regenerates Figure 6(b): the QoE traces of the same runs.
func BenchmarkFig6b(b *testing.B) {
	var last *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(2)
		if err != nil {
			b.Fatal(err)
		}
		r.WriteText(io.Discard)
		last = r
	}
	var ada, fn float64
	for _, s := range last.Series {
		if s.Scenario == "scenario1+2" {
			if s.Label == "AdaFlow" {
				ada = s.Stats.QoEPct
			} else {
				fn = s.Stats.QoEPct
			}
		}
	}
	b.ReportMetric(ada, "QoE-adaflow-scen1+2")
	b.ReportMetric(fn, "QoE-finn-scen1+2")
}

// BenchmarkAblationSwitchCriteria sweeps the Fixed/Flexible selection
// criteria multiple (the paper fine-tunes 10×).
func BenchmarkAblationSwitchCriteria(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationSwitchCriteria([]float64{1, 10, 100}, benchRuns/2+1, 1)
		if err != nil {
			b.Fatal(err)
		}
		r.WriteText(io.Discard)
	}
}

// BenchmarkAblationThreshold sweeps the user accuracy threshold.
func BenchmarkAblationThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationThreshold([]float64{0.05, 0.10, 0.20}, benchRuns/2+1, 1)
		if err != nil {
			b.Fatal(err)
		}
		r.WriteText(io.Discard)
	}
}

// BenchmarkAblationPolicy compares the accuracy-first and energy-first
// model-selection policies.
func BenchmarkAblationPolicy(b *testing.B) {
	var last *experiments.AblationPolicyResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationPolicy(benchRuns/2+1, 1)
		if err != nil {
			b.Fatal(err)
		}
		r.WriteText(io.Discard)
		last = r
	}
	b.ReportMetric(last.Rows[0].PowerEff, "throughput-policy-inf-per-J")
	b.ReportMetric(last.Rows[1].PowerEff, "energy-policy-inf-per-J")
}

// BenchmarkAblationConstraintRelax measures how many freely-pruned models
// the dataflow constraints would reject.
func BenchmarkAblationConstraintRelax(b *testing.B) {
	var last *experiments.AblationConstraintsResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationConstraintRelax()
		if err != nil {
			b.Fatal(err)
		}
		r.WriteText(io.Discard)
		last = r
	}
	b.ReportMetric(float64(last.FreeViolates), "free-prune-violations")
	b.ReportMetric(float64(last.Total), "versions-total")
}

// BenchmarkExtChurn runs the device-churn extension experiment (variable
// number of connected nodes, which the paper motivates but does not
// evaluate).
func BenchmarkExtChurn(b *testing.B) {
	var last *experiments.ExtChurnResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtChurn(benchRuns, 1)
		if err != nil {
			b.Fatal(err)
		}
		r.WriteText(io.Discard)
		last = r
	}
	b.ReportMetric(last.AdaFlow.FrameLossPct, "ada-loss-pct")
	b.ReportMetric(last.FINN.FrameLossPct, "finn-loss-pct")
}

// BenchmarkExtPoolScaling runs the multi-FPGA scaling study (the authors'
// follow-up direction, the paper's reference [3]).
func BenchmarkExtPoolScaling(b *testing.B) {
	var last *experiments.ExtPoolResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtPoolScaling(3, 1)
		if err != nil {
			b.Fatal(err)
		}
		r.WriteText(io.Discard)
		last = r
	}
	b.ReportMetric(last.Rows[0].PowerEff, "one-board-inf-per-J")
	b.ReportMetric(last.Rows[3].PowerEff, "four-board-inf-per-J")
}

// BenchmarkAblationFoldingExplorer traces the FPS-vs-LUT frontier of the
// folding design space (FINN's folding-configuration step).
func BenchmarkAblationFoldingExplorer(b *testing.B) {
	m, err := model.CNVW2A2("cifar10", 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	var lut460, lut1800 float64
	for i := 0; i < b.N; i++ {
		r1, err := explore.TargetFPS(m, 460, explore.Options{MaxIterations: 4000})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := explore.TargetFPS(m, 1800, explore.Options{MaxIterations: 8000})
		if err != nil {
			b.Fatal(err)
		}
		lut460, lut1800 = float64(r1.Res.LUT), float64(r2.Res.LUT)
	}
	b.ReportMetric(lut460, "LUT-at-460fps")
	b.ReportMetric(lut1800, "LUT-at-1800fps")
}

// BenchmarkExtEngineComparison evaluates the §II dataflow-vs-single-engine
// architecture comparison.
func BenchmarkExtEngineComparison(b *testing.B) {
	var last *experiments.ExtEngineResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtEngineComparison()
		if err != nil {
			b.Fatal(err)
		}
		r.WriteText(io.Discard)
		last = r
	}
	b.ReportMetric(last.Rows[0].FPS/last.Rows[1].FPS, "dataflow-speedup-equal-array")
}

// ---- substrate micro-benchmarks ----

// BenchmarkGemm measures the GEMM kernel behind convolution lowering.
func BenchmarkGemm(b *testing.B) {
	a := tensor.New(64, 576)
	for i := range a.Data() {
		a.Data()[i] = float32(i%13) * 0.1
	}
	c := tensor.New(576, 196)
	for i := range c.Data() {
		c.Data()[i] = float32(i%7) * 0.2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tensor.Gemm(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGemmInt8 measures the integer fast-path kernel on the same
// 64×576·576×196 shape as BenchmarkGemm, so the two rows of a bench run
// read directly as the int8-vs-float kernel comparison.
func BenchmarkGemmInt8(b *testing.B) {
	a := tensor.NewInt8Matrix(64, 576)
	for i := range a.Data {
		a.Data[i] = int8(i%5 - 2)
	}
	c := tensor.NewInt8Matrix(576, 196)
	for i := range c.Data {
		c.Data[i] = int8(i%11 - 5)
	}
	dst := make([]int32, 64*196)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tensor.GemmInt8Into(dst, a, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGemmSizes compares the serial fast path against the pooled
// parallel path on small/medium/large square GEMMs, writing into reused
// scratch so allocs/op shows the zero-allocation steady state.
func BenchmarkGemmSizes(b *testing.B) {
	for _, size := range []struct {
		name string
		dim  int
	}{{"small-32", 32}, {"medium-128", 128}, {"large-384", 384}} {
		a := tensor.New(size.dim, size.dim)
		c := tensor.New(size.dim, size.dim)
		for i := range a.Data() {
			a.Data()[i] = float32(i%13)*0.1 - 0.5
			c.Data()[i] = float32(i%7)*0.2 - 0.5
		}
		dst := tensor.New(size.dim, size.dim)
		for _, mode := range []struct {
			name    string
			workers int
		}{{"serial", 1}, {"parallel", 0}} { // 0 resets the cap to NumCPU
			b.Run(size.name+"/"+mode.name, func(b *testing.B) {
				prev := tensor.SetMaxWorkers(mode.workers)
				defer tensor.SetMaxWorkers(prev)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := tensor.GemmInto(dst, a, c); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkIm2Col measures the sliding-window lowering (the software SWU)
// on the first-conv geometry of the paper's CNV, into reused scratch.
func BenchmarkIm2Col(b *testing.B) {
	g := tensor.ConvGeom{InC: 3, InH: 32, InW: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	in := tensor.New(3, 32, 32)
	for i := range in.Data() {
		in.Data()[i] = float32(i%11) * 0.1
	}
	dst := tensor.Borrow(g.InC*g.KH*g.KW, g.OutH()*g.OutW())
	defer tensor.Release(dst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tensor.Im2ColInto(dst, in, g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvForward measures one quantized convolution inference pass —
// the per-image hot path of accuracy sweeps — where the EffectiveWeights
// cache and the pooled im2col scratch keep steady-state allocations to the
// output tensor alone.
func BenchmarkConvForward(b *testing.B) {
	q, err := quant.NewWeightQuantizer(2)
	if err != nil {
		b.Fatal(err)
	}
	conv, err := nn.NewConv2D(nn.ConvConfig{
		ID: "bench",
		Geom: tensor.ConvGeom{
			InC: 64, InH: 16, InW: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
		},
		OutC: 64, Bias: true, WQuant: q,
		InitRNG: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.New(64, 16, 16)
	for i := range x.Data() {
		x.Data()[i] = float32(i%9)*0.25 - 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conv.Forward(x, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvForwardInt8 runs the BenchmarkConvForward layer with the
// inference path pinned to each kernel, isolating the integer fast path
// win from whatever the session default is (BenchmarkConvForward itself
// uses the default, which is the int8 path for this 2-bit layer).
func BenchmarkConvForwardInt8(b *testing.B) {
	q, err := quant.NewWeightQuantizer(2)
	if err != nil {
		b.Fatal(err)
	}
	conv, err := nn.NewConv2D(nn.ConvConfig{
		ID: "bench-int8",
		Geom: tensor.ConvGeom{
			InC: 64, InH: 16, InW: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
		},
		OutC: 64, Bias: true, WQuant: q,
		InitRNG: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.New(64, 16, 16)
	for i := range x.Data() {
		x.Data()[i] = float32(i%9)*0.25 - 1
	}
	for _, bc := range []struct {
		name string
		int8 bool
	}{{"int8", true}, {"float", false}} {
		b.Run(bc.name, func(b *testing.B) {
			prev := nn.SetInt8GEMM(bc.int8)
			defer nn.SetInt8GEMM(prev)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := conv.Forward(x, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTinyInference measures one quantized forward pass.
func BenchmarkTinyInference(b *testing.B) {
	m, err := model.TinyCNV("tiny", "tiny-syn", 2, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.New(3, 8, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Net.Forward(x, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainEpoch measures one training epoch of the tiny model.
func BenchmarkTrainEpoch(b *testing.B) {
	ds := dataset.TinyDataset(1)
	m, err := model.TinyCNV("tiny", ds.Name, 2, ds.Classes, 1)
	if err != nil {
		b.Fatal(err)
	}
	opts := train.DefaultOptions()
	opts.Epochs = 1
	opts.Samples = 80
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := train.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tr.Fit(m, ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDataflowPipelineSim measures the event-driven pipeline
// simulator on the paper-scale CNV.
func BenchmarkDataflowPipelineSim(b *testing.B) {
	m, err := model.CNVW2A2("cifar10", 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	df, err := finn.Map(m, finn.DefaultFolding(m), finn.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := df.SimulatePipeline(100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLibraryGenerate measures the full design-time sweep (18 pruned
// versions, 18 fixed accelerators, one flexible) at paper scale, serial
// versus fanned over all cores. scripts/bench.sh records both in
// BENCH_PR3.json; the serial number is the PR 3 baseline the parallel
// sweep is judged against.
func BenchmarkLibraryGenerate(b *testing.B) {
	p := experiments.Pairs[0]
	m, err := model.CNVW2A2(p.Dataset, p.Classes, 1)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := newCalibrated(p)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", runtime.NumCPU()},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := library.Generate(m, library.Config{Evaluator: ev, Workers: bc.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExploreTargetFPS measures one greedy folding search. The cold
// variant clears the evaluation cache every iteration (full incremental
// search from scratch); the warm variant re-runs the same search against a
// primed cache, isolating the memoization win.
func BenchmarkExploreTargetFPS(b *testing.B) {
	m, err := model.CNVW2A2("cifar10", 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	const target = 1800
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			explore.ResetCache()
			if _, err := explore.TargetFPS(m, target, explore.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		explore.ResetCache()
		if _, err := explore.TargetFPS(m, target, explore.Options{}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := explore.TargetFPS(m, target, explore.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func newCalibrated(p experiments.Pair) (Evaluator, error) {
	return NewCalibratedEvaluator(p.ModelName, p.Dataset)
}

// BenchmarkPrunePlan measures dataflow-aware plan construction on the
// paper-scale model.
func BenchmarkPrunePlan(b *testing.B) {
	m, err := model.CNVW2A2("cifar10", 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	fold := finn.DefaultFolding(m)
	gs, err := fold.ChannelGranularity(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prune.PlanFilters(m, 0.45, gs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEdgeScenarioRun measures one full 25-second edge simulation.
func BenchmarkEdgeScenarioRun(b *testing.B) {
	p := experiments.Pairs[0]
	lib, err := experiments.Lib(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := edge.Run(edge.Scenario2(), edge.NewStaticFINN(lib), edge.SimConfig{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunEdge measures the serving hot path — AdaFlow controller,
// Runtime Manager decisions, full 25 s scenario — with tracing off. The
// fluid variant is the historical disabled-tracer overhead guard:
// scripts/verify.sh compares it against the committed baseline, so
// instrumentation added to the serving loop must stay free when no tracer
// is attached. The batch=N variants run the event-level simulator (every
// frame is an event) under a deadline; batch=1 is per-frame dispatch and
// batch=8 amortizes the per-dispatch fixed costs — service completions,
// their engine events, and the controller bookkeeping — over eight
// frames, which is the allocs/op win the baseline tracks. The adapt
// variant runs the closed drift-recovery loop (detect → retrain → swap)
// under a sustained shift; the fluid variant doubles as the guard that
// the adaptation plumbing stays free when Adapt is disabled.
func BenchmarkRunEdge(b *testing.B) {
	p := experiments.Pairs[0]
	lib, err := experiments.Lib(p)
	if err != nil {
		b.Fatal(err)
	}
	newCtl := func(b *testing.B) Controller {
		mgr, err := NewRuntimeManager(lib, DefaultManagerConfig())
		if err != nil {
			b.Fatal(err)
		}
		return NewAdaFlowController(mgr)
	}
	b.Run("fluid", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := RunEdge(Scenario2(), newCtl(b), SimConfig{Seed: int64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, batch := range []int{1, 8} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunEdgeEventLevel(Scenario2(), newCtl(b), SimConfig{
					Seed: int64(i), Deadline: 0.1, Batch: batch,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("adapt", func(b *testing.B) {
		plan, err := ParseFaultPlan("drift-sustained:p=1,start=5,mag=-0.15")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := RunEdge(Scenario2(), newCtl(b), SimConfig{
				Seed: int64(i), FaultPlan: plan, FaultSeed: 1,
				Adapt: AdaptConfig{Enabled: true},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPoolRun measures the supervised multi-board pool over the full
// hybrid scenario. The healthy variant runs with no fault rules and is the
// supervision overhead guard: scripts/verify.sh compares it against the
// BENCH_PR8.json baseline via benchjson -check, so heartbeats and health
// bookkeeping must stay nearly free when no faults fire. The one-dead
// variant crashes a board mid-run and exercises detection, failover, and
// capacity redistribution.
func BenchmarkPoolRun(b *testing.B) {
	p := experiments.Pairs[0]
	lib, err := experiments.Lib(p)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, plan *FaultPlan) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pool, err := NewPool(lib, 4, DefaultManagerConfig())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := RunEdge(Scenario12(), pool, SimConfig{
				Seed: int64(i), FaultPlan: plan, FaultSeed: 1,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("healthy", func(b *testing.B) { run(b, nil) })
	b.Run("one-dead", func(b *testing.B) {
		plan, err := ParseFaultPlan("board-crash:p=1,board=0,start=5,end=5.05,repair=60")
		if err != nil {
			b.Fatal(err)
		}
		run(b, plan)
	})
	// The batched variant puts an 8-frame dispatch queue in front of each
	// board (PoolConfig.Batch); the per-board analytic queues ride the
	// existing heartbeats, so this doubles as the batching overhead guard.
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pool, err := NewSupervisedPool(lib, PoolConfig{
				Boards: 4, Manager: DefaultManagerConfig(), Batch: 8,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := RunEdge(Scenario12(), pool, SimConfig{Seed: int64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkClusterRun measures the fleet scheduler end to end: 1000
// camera streams sharded across 8 supervised pools for the default 5
// epochs. The healthy variant is the cluster-control overhead guard —
// scripts/verify.sh compares it against the BENCH_PR8.json baseline via
// benchjson -check, so placement, rebalancing, and aggregation must stay
// cheap relative to the serving work they orchestrate. The one-pool-dead
// variant crashes all of pool 0's boards mid-run and exercises
// migration, blackout accounting, and repair.
func BenchmarkClusterRun(b *testing.B) {
	p := experiments.Pairs[0]
	lib, err := experiments.Lib(p)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, plan *FaultPlan, faultPools []int) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sch, err := NewClusterScheduler(lib, DefaultStreams(1000), ClusterConfig{
				Pools: 8, Seed: int64(i + 1),
				FaultPlan: plan, FaultPools: faultPools, FaultSeed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sch.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("healthy", func(b *testing.B) { run(b, nil, nil) })
	b.Run("one-pool-dead", func(b *testing.B) {
		plan, err := ParseFaultPlan("board-crash:p=1,start=6,end=6.3,repair=8")
		if err != nil {
			b.Fatal(err)
		}
		run(b, plan, []int{0})
	})
}

// BenchmarkDESKernel measures raw event throughput of the simulation
// kernel on both queue implementations. The closure is hoisted out of the
// schedule loop so allocs/op reflects the engine (event storage, queue
// bookkeeping), not benchmark-side closure captures; with slab-allocated
// events and the calendar queue the steady state is a few allocs per
// thousand events instead of one per event.
func BenchmarkDESKernel(b *testing.B) {
	for _, bc := range []struct {
		name string
		kind sim.QueueKind
	}{{"calendar", sim.CalendarQueue}, {"heap", sim.HeapQueue}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := sim.NewEngineWithQueue(bc.kind)
				n := 0
				fn := func() { n++ }
				for j := 0; j < 1000; j++ {
					if err := e.Schedule(float64(j), fn); err != nil {
						b.Fatal(err)
					}
				}
				e.Run(2000)
				if n != 1000 {
					b.Fatal("events lost")
				}
			}
		})
	}
}
