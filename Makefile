GO ?= go

.PHONY: all build test race bench verify

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages that exercise the tensor worker
# pool concurrently.
race:
	$(GO) test -race ./internal/tensor/... ./internal/nn/... ./internal/train/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Everything CI would check: gofmt, vet, build, tests, race detector.
verify:
	./scripts/verify.sh
