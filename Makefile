GO ?= go

.PHONY: all build test race test-race test-chaos trace-golden bench bench-all verify

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages that exercise the tensor worker
# pool concurrently.
race:
	$(GO) test -race ./internal/tensor/... ./internal/nn/... ./internal/train/...

# Race-detector pass over the serving stack and the parallel design-time
# pipeline (library sweep, memoized explorer, experiment harness) on top
# of the concurrent compute packages.
test-race:
	$(GO) test -race ./internal/tensor/... ./internal/nn/... ./internal/train/... \
		./internal/quant/... \
		./internal/edge/... ./internal/manager/... ./internal/multiedge/... \
		./internal/cluster/... ./internal/adapt/... \
		./internal/library/... ./internal/explore/... ./internal/parallel/... \
		./internal/sim/... ./internal/experiments/... ./internal/obs/...

# Golden trace suite: the Fig. 6 scenario traces plus the pinned
# decision-event streams (manager verdicts) for Scenarios 1, 2 and 1+2,
# and the pool supervision streams (failover, overload shed).
# Regenerate after an intentional semantic change with:
#   go test ./internal/edge/ ./internal/multiedge/ ./internal/cluster/ -run Golden -update
trace-golden:
	$(GO) test -count=1 -run 'Golden' ./internal/edge/... ./internal/multiedge/... ./internal/cluster/...

# Chaos suite: every fault-injection test (fixed seed matrix, deterministic)
# across the fault layer, edge simulation, manager, pool, and the
# closed-loop drift-recovery path.
test-chaos:
	$(GO) test -count=1 -run 'Chaos|Adapt' ./internal/edge/... ./internal/multiedge/... ./internal/cluster/...
	$(GO) test -count=1 ./internal/fault/... ./internal/adapt/...
	$(GO) test -count=1 -run 'Property|Degrade|ReconfigFailed|Backoff|Swap' ./internal/manager/...

# Tracked benchmark baseline: key design-time and substrate benchmarks,
# recorded to BENCH_PR10.json for regression diffing.
bench:
	./scripts/bench.sh

# Full sweep over every benchmark in the repo (paper figures included).
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Everything CI would check: gofmt, vet, build, tests, race detector.
verify:
	./scripts/verify.sh
